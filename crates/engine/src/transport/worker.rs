//! The worker daemon: what runs inside a networked worker process.
//!
//! A worker binary is a few lines — build an [`OperatorRegistry`] with
//! the operator logic the job may reference, then hand control to
//! [`worker_main`]:
//!
//! ```no_run
//! use albic_engine::transport::{worker_main, OperatorRegistry};
//!
//! std::process::exit(worker_main(OperatorRegistry::with_builtins()));
//! ```
//!
//! The daemon connects back to the address in `ALBIC_WORKER_CONNECT`
//! (retrying for a few seconds, so it can be started *before* the
//! controller — the join workflow), and introduces itself with a `HELLO`
//! frame carrying the node id from `ALBIC_WORKER_NODE` and the
//! shared-secret token from `ALBIC_WORKER_TOKEN`. The `INIT` bootstrap
//! it receives carries data-plane config, the operator network (logic
//! resolved by name against the registry — operators are code, and code
//! does not cross the wire), the initial routing table, and the session
//! policy (reconnect schedule, wire compression). It then runs the
//! *identical* [`WorkerCtx`](crate::runtime) event loop as an in-process
//! worker thread: the only differences are an uplink session where
//! channel sends would be, and a reader thread feeding the inbox from
//! the socket.
//!
//! When the socket dies the daemon does **not** exit: the reader thread
//! re-dials under the `INIT`-supplied [`ReconnectPolicy`], presents a
//! `RESUME` frame (node id, token, delivered-frame mark, routing
//! version), and on `RESUMED` replays its unacked outbound suffix while
//! the controller replays the other direction. Only when the policy is
//! exhausted does the uplink die, the inbox disconnect, and the process
//! exit — at which point the controller's checkpoint recovery owns the
//! node's state.

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};

use albic_types::{NodeId, OperatorId};

use crate::codec::Reader;
use crate::operator::{Counting, Identity, Operator, PaddedCounting};
use crate::routing::RoutingTable;
use crate::runtime::{Msg, RoutingShared, WorkerCtx, WorkerGauge};
use crate::topology::TopologyBuilder;
use crate::transport::net::{self, Conn};
use crate::transport::session::{ReconnectPolicy, SeqVerdict};
use crate::transport::wire::{self, FrameBuffer, WireOut};
use crate::transport::WorkerSpawn;

/// How long a freshly started daemon keeps re-dialing the controller
/// before giving up — long enough to start workers first and the
/// controller after (the two-machine join workflow).
const DIAL_PATIENCE: Duration = Duration::from_secs(10);

/// Operator logic available to a worker daemon, keyed by
/// [`Operator::name`]. The `INIT` bootstrap names each operator's logic;
/// the daemon refuses to start if any name is missing here — a worker
/// binary must be built with the same operator set as the controller.
#[derive(Default)]
pub struct OperatorRegistry {
    ops: HashMap<String, Arc<dyn Operator>>,
}

impl OperatorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with the engine's built-in operators
    /// ([`Identity`], [`Counting`], [`PaddedCounting`]).
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        reg.register(Arc::new(Identity));
        reg.register(Arc::new(Counting));
        reg.register(Arc::new(PaddedCounting));
        reg
    }

    /// Add one operator logic, keyed by its [`Operator::name`]. Replaces
    /// any previous registration under the same name.
    pub fn register(&mut self, logic: Arc<dyn Operator>) -> &mut Self {
        self.ops.insert(logic.name().to_string(), logic);
        self
    }

    /// Look up logic by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Operator>> {
        self.ops.get(name).cloned()
    }
}

impl std::fmt::Debug for OperatorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.ops.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("OperatorRegistry")
            .field("ops", &names)
            .finish()
    }
}

/// Run a worker daemon to completion: connect back to the controller
/// named by `ALBIC_WORKER_CONNECT`, handshake as the node in
/// `ALBIC_WORKER_NODE` (presenting `ALBIC_WORKER_TOKEN`), and serve the
/// worker event loop until shutdown or until the reconnect policy is
/// exhausted. Returns the process exit code.
pub fn worker_main(registry: OperatorRegistry) -> i32 {
    match run_worker(&registry) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("albic-worker: {e}");
            1
        }
    }
}

fn env_var(name: &str) -> io::Result<String> {
    std::env::var(name)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, format!("{name} is not set")))
}

fn bad_data(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn run_worker(registry: &OperatorRegistry) -> io::Result<()> {
    let addr = env_var(net::ENV_CONNECT)?;
    let node_raw: u32 = env_var(net::ENV_NODE)?
        .parse()
        .map_err(|e| bad_data(format!("bad {}: {e}", net::ENV_NODE)))?;
    let node = NodeId::new(node_raw);
    let token = std::env::var(net::ENV_TOKEN).unwrap_or_default();

    // Dial with patience: in the join workflow the daemon may be started
    // before the controller's listener exists.
    let mut conn = {
        let deadline = Instant::now() + DIAL_PATIENCE;
        loop {
            match net::connect(&addr) {
                Ok(c) => break c,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => return Err(e),
            }
        }
    };
    conn.write_all(&wire::frame_bytes(
        wire::FRAME_HELLO,
        &wire::encode_hello(node, &token),
    ))?;
    conn.flush()?;

    let mut fb = FrameBuffer::new();
    let (kind, body) = net::read_frame_blocking(&mut conn, &mut fb)?;
    if kind != wire::FRAME_INIT {
        return Err(bad_data(format!("expected INIT frame, got kind {kind}")));
    }
    let init = wire::decode_init(&mut Reader::new(&body)).map_err(bad_data)?;

    // Rebuild the topology: operator ids are dense and in `INIT` order,
    // so the builder reassigns the same ids the controller has.
    let mut builder = TopologyBuilder::new();
    for op in &init.ops {
        let logic = registry
            .get(&op.logic)
            .ok_or_else(|| bad_data(format!("operator logic {:?} is not registered", op.logic)))?;
        if op.is_source {
            builder.source(op.name.clone(), op.key_groups, logic);
        } else {
            builder.operator(op.name.clone(), op.key_groups, logic);
        }
    }
    for &(from, to) in &init.edges {
        builder.edge(OperatorId::new(from), OperatorId::new(to));
    }
    let topology = Arc::new(builder.build().map_err(|e| bad_data(format!("{e:?}")))?);

    // The local routing replica, refreshed by ROUTING frames.
    let routing = Arc::new(RoutingShared::new(RoutingTable::from_assignment(
        init.assignment.clone(),
    )));
    routing.install(init.routing_version, init.assignment);

    let uplink = WireOut::new(conn.try_clone()?, init.compression);
    let (tx, rx) = unbounded();
    let gauge = Arc::new(WorkerGauge::default());

    // Reader thread: socket → inbox. It owns the only inbox sender, so
    // when the uplink dies for good (reconnect policy exhausted) the
    // channel drops and the event loop below exits — the same signal an
    // in-process worker gets from a disconnected inbox. It inherits the
    // INIT read's frame buffer: the read that completed the INIT frame
    // may have pulled in the prefix (or whole) of whatever the
    // controller sent next, and a fresh buffer would silently drop it.
    // A failed thread spawn exits the daemon cleanly (the controller
    // sees the socket close and, with no RESUME coming, degrades to the
    // crashed-worker path) instead of panicking.
    let reader = {
        let link = ReaderLink {
            uplink: uplink.clone(),
            gauge: Arc::clone(&gauge),
            routing: Arc::clone(&routing),
            tx,
            addr: addr.clone(),
            node,
            token,
            policy: init.reconnect,
        };
        std::thread::Builder::new()
            .name("albic-uplink-reader".into())
            .spawn(move || link.run(conn, fb))
            .map_err(|e| io::Error::other(format!("spawn uplink reader: {e}")))?
    };

    // The daemon has no local peers: sender/gauge maps stay empty, so
    // every remote destination takes the uplink branch of the worker's
    // send paths.
    let spawn = WorkerSpawn {
        node,
        inbox: rx,
        gauge,
        topology,
        routing,
        senders: Arc::default(),
        gauges: Arc::default(),
        dropped: Arc::default(),
        cfg: init.cfg,
    };
    let _leftover = WorkerCtx::from_spawn(spawn, Some(uplink)).run();
    // The reader may still be parked in a blocking read on its clone of
    // the socket; it is detached rather than joined — the process exit
    // right after this return is what tears the socket down.
    drop(reader);
    Ok(())
}

/// Verdict of one inbound uplink frame.
enum LinkEvent {
    /// Keep reading.
    Keep,
    /// The stream is inconsistent with the session (sequence gap): tear
    /// the socket down and reconnect — the resume resend heals it.
    Cut,
    /// Garbled or hostile input, or the worker is gone: fail closed.
    Fatal,
}

/// The daemon side of the uplink session: the frame-reading loop plus
/// the reconnect schedule it falls back to when the socket dies.
struct ReaderLink {
    uplink: WireOut,
    gauge: Arc<WorkerGauge>,
    routing: Arc<RoutingShared>,
    tx: Sender<Msg>,
    addr: String,
    node: NodeId,
    token: String,
    policy: ReconnectPolicy,
}

impl ReaderLink {
    fn run(self, mut conn: Conn, mut fb: FrameBuffer) {
        'link: loop {
            // Read until the socket dies (then try to resume) or the
            // session itself is declared over.
            while let Ok((kind, body)) = net::read_frame_blocking(&mut conn, &mut fb) {
                match self.on_frame(kind, &body) {
                    LinkEvent::Keep => self.uplink.flush_ack(),
                    LinkEvent::Cut => break,
                    LinkEvent::Fatal => {
                        self.uplink.mark_dead();
                        return;
                    }
                }
            }
            let _ = conn.shutdown();
            // Re-dial under the policy; success re-enters the read loop
            // on a fresh socket with the session intact.
            let salt = 0x616c_6269_6300_0000u64 | u64::from(self.node.raw());
            for attempt in 0..self.policy.attempts {
                std::thread::sleep(self.policy.backoff(attempt, salt));
                match self.try_resume() {
                    Some((new_conn, new_fb)) => {
                        conn = new_conn;
                        fb = new_fb;
                        continue 'link;
                    }
                    None => continue,
                }
            }
            eprintln!(
                "albic-worker: node {} lost its controller for good after {} attempts",
                self.node, self.policy.attempts
            );
            self.uplink.mark_dead();
            return;
        }
    }

    /// One reconnect attempt: dial, present `RESUME`, wait briefly for
    /// `RESUMED`, then replay the unacked outbound suffix.
    fn try_resume(&self) -> Option<(Conn, FrameBuffer)> {
        let mut conn = net::connect(&self.addr).ok()?;
        let resume = wire::ResumeMsg {
            node: self.node,
            token: self.token.clone(),
            delivered: self.uplink.delivered(),
            routing_version: self.routing.version(),
        };
        conn.write_all(&wire::frame_bytes(
            wire::FRAME_RESUME,
            &wire::encode_resume(&resume),
        ))
        .and_then(|()| conn.flush())
        .ok()?;
        conn.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
        let mut fb = FrameBuffer::new();
        let (kind, body) = net::read_frame_blocking(&mut conn, &mut fb).ok()?;
        if kind != wire::FRAME_RESUMED {
            return None;
        }
        let peer_delivered = wire::decode_resumed(&mut Reader::new(&body)).ok()?;
        conn.set_read_timeout(None).ok()?;
        let write_half = conn.try_clone().ok()?;
        self.uplink.resume(write_half, peer_delivered).ok()?;
        Some((conn, fb))
    }

    fn on_frame(&self, kind: u8, body: &[u8]) -> LinkEvent {
        match kind {
            wire::FRAME_ACK => match wire::decode_ack(&mut Reader::new(body)) {
                Ok(upto) => {
                    self.uplink.peer_ack(upto);
                    LinkEvent::Keep
                }
                Err(_) => LinkEvent::Fatal,
            },
            wire::FRAME_MSG | wire::FRAME_ROUTING => {
                let Ok((seq, ack, payload)) = wire::split_session(body) else {
                    return LinkEvent::Fatal;
                };
                self.uplink.peer_ack(ack);
                match self.uplink.accept(seq) {
                    SeqVerdict::Duplicate => LinkEvent::Keep, // resume overlap
                    SeqVerdict::Gap => LinkEvent::Cut,
                    SeqVerdict::Fresh => self.dispatch(kind, payload),
                }
            }
            // Unknown kinds are ignored for forward compatibility.
            _ => LinkEvent::Keep,
        }
    }

    fn dispatch(&self, kind: u8, payload: &[u8]) -> LinkEvent {
        let mut r = Reader::new(payload);
        if kind == wire::FRAME_ROUTING {
            return match wire::decode_routing(&mut r) {
                Ok((version, assignment)) => {
                    self.routing.install(version, assignment);
                    LinkEvent::Keep
                }
                Err(_) => LinkEvent::Fatal,
            };
        }
        match wire::decode_msg(&mut r, Some(&self.uplink)) {
            Ok(msg) => {
                if matches!(msg, Msg::DataBatch(_) | Msg::DataChunk(_)) {
                    // Meter before the send: the event loop decrements on
                    // dequeue, and the pair is what the controller's
                    // credit gauge mirrors.
                    self.gauge.enqueued();
                }
                if self.tx.send(msg).is_err() {
                    return LinkEvent::Fatal; // the event loop is gone
                }
                LinkEvent::Keep
            }
            Err(_) => LinkEvent::Fatal,
        }
    }
}
