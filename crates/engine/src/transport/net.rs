//! The networked transport backend: worker processes over
//! length-prefixed TCP or Unix-domain sockets.
//!
//! Topology is a star: the controller owns one listener and one socket
//! per worker; workers never connect to each other. Peer traffic (data
//! hand-off, state installs, epoch announcements) travels up the
//! sender's socket as a `FORWARD` frame and is relayed by the sender's
//! controller-side stub into the destination worker's inbox channel —
//! from where the destination's stub writes it down the other socket.
//! Two hops instead of one, but every existing coordinator wait, FIFO
//! argument and liveness check keeps working unchanged, because each
//! stub thread *is* its worker as far as the runtime can tell.
//!
//! Admission is asynchronous: a dedicated acceptor thread reads the
//! first frame of every inbound connection and routes it to the owning
//! stub — a `HELLO` (fresh worker, spawned by the controller *or*
//! joining from another machine under a shared-secret token) or a
//! `RESUME` (a surviving worker re-dialing after its socket died). Stubs
//! therefore handshake concurrently: a worker binary that dies before
//! its `HELLO` stalls only its own stub, never its siblings.
//!
//! A stub's socket is nonblocking in both directions, with a manual
//! outbound byte buffer. While that buffer is non-empty the stub does
//! not pull from its inbox — so the worker's credit gauge keeps
//! counting queued-but-unsent batches and injection backpressure works
//! exactly as in-process. Reads are drained before writes each turn,
//! so a reply can never be starved by bulk data: the two directions
//! cannot deadlock because every wait in the protocol is bounded.
//!
//! Socket death is *not* worker death. Each link runs a sequence-
//! numbered session (see [`crate::transport::session`]); on a cut the
//! stub parks outbound frames and waits out the [`ReconnectPolicy`]'s
//! window for the worker to `RESUME`, after which both sides replay
//! exactly the frames the other never delivered. Only when the window
//! expires — or when [`Transport::inject_fault`] deliberately poisons
//! the session before SIGKILLing the process, so a kill can never race
//! the reconnect — does the stub exit and checkpoint recovery take
//! over.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, TryRecvError};

use albic_types::NodeId;

use crate::codec::{Reader, Writer};
use crate::runtime::{
    send_gated, GaugeMap, Msg, RoutingShared, RuntimeConfig, SenderMap, PRESSURE_POLL,
    WORKER_SEND_PATIENCE,
};
use crate::transport::session::{
    ReconnectPolicy, RecvSequencer, SendSequencer, SeqVerdict, SEND_QUEUE_LIMIT,
};
use crate::transport::wire::{self, Correlator, FrameBuffer};
use crate::transport::{FailedSpawn, Peers, Transport, TransportError, WorkerMailbox, WorkerSpawn};

/// How long the controller waits for a worker process *it launched* to
/// connect and say hello. Joined workers get [`NetConfig::join_deadline`]
/// instead.
const HANDSHAKE_PATIENCE: Duration = Duration::from_secs(10);
/// How long [`Transport::worker_gone`] and shutdown wait for a child to
/// exit on its own before escalating to SIGKILL.
const REAP_PATIENCE: Duration = Duration::from_secs(5);
/// How long the acceptor waits for a new connection's first frame before
/// dropping it.
const ADMIT_PATIENCE: Duration = Duration::from_secs(2);
/// Socket read/write scratch size.
const IO_CHUNK: usize = 64 * 1024;
/// Per-turn cap on staged outbound bytes, so reads stay interleaved with
/// bulk writes.
const STAGE_LIMIT: usize = 256 * 1024;

/// Environment variable carrying the controller address a worker daemon
/// must connect back to (`tcp:host:port` or `uds:/path`).
pub(crate) const ENV_CONNECT: &str = "ALBIC_WORKER_CONNECT";
/// Environment variable carrying the node id the worker was launched for.
pub(crate) const ENV_NODE: &str = "ALBIC_WORKER_NODE";
/// Environment variable carrying the shared-secret join token (empty or
/// unset when the controller was configured without one).
pub(crate) const ENV_TOKEN: &str = "ALBIC_WORKER_TOKEN";

/// Monotonic counter making UDS socket paths unique within a process.
static UDS_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Which socket family the controller listens on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketKind {
    /// TCP on `127.0.0.1` (an OS-assigned port) unless
    /// [`NetConfig::listen`] says otherwise.
    Tcp,
    /// A Unix-domain socket under the system temp directory unless
    /// [`NetConfig::listen`] names a path.
    #[cfg(unix)]
    Uds,
}

/// Configuration for [`NetTransport`]: where the worker daemon binary
/// lives, which socket family to use, and the session policy (joining,
/// reconnection, compression).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Path to the worker daemon executable (a binary calling
    /// [`crate::transport::worker_main`]). Unused in join mode.
    pub worker_cmd: PathBuf,
    /// Socket family for the controller↔worker connections.
    pub kind: SocketKind,
    /// Explicit listen address: a `host:port` for TCP, a filesystem path
    /// for UDS. `None` picks an ephemeral one — fine when the controller
    /// launches every worker itself, useless for joining, since remote
    /// workers must be told where to dial.
    pub listen: Option<String>,
    /// Shared-secret join token. Every `HELLO`/`RESUME` must present it;
    /// launched workers inherit it via `ALBIC_WORKER_TOKEN`. Empty means no
    /// authentication (single-machine default).
    pub token: String,
    /// `Some(n)`: *join mode* — the controller launches nothing and
    /// instead admits `n` externally started workers (same daemon
    /// binary, pointed at `ALBIC_WORKER_CONNECT`). Must equal the job's cluster
    /// size.
    pub expected_workers: Option<usize>,
    /// How long each stub waits for its worker to join in join mode.
    pub join_deadline: Duration,
    /// Reconnect schedule applied by both peers of every worker link.
    pub reconnect: ReconnectPolicy,
    /// LZ4-compress state-migration and checkpoint payloads on the wire.
    pub compression: bool,
}

impl NetConfig {
    /// TCP-loopback config for the given worker binary.
    pub fn tcp(worker_cmd: impl Into<PathBuf>) -> Self {
        NetConfig {
            worker_cmd: worker_cmd.into(),
            kind: SocketKind::Tcp,
            listen: None,
            token: String::new(),
            expected_workers: None,
            join_deadline: Duration::from_secs(30),
            reconnect: ReconnectPolicy::default(),
            compression: false,
        }
    }

    /// Unix-domain-socket config for the given worker binary.
    #[cfg(unix)]
    pub fn uds(worker_cmd: impl Into<PathBuf>) -> Self {
        NetConfig {
            kind: SocketKind::Uds,
            ..NetConfig::tcp(worker_cmd)
        }
    }

    /// Listen on an explicit address (`host:port` for TCP, a path for
    /// UDS) instead of an ephemeral one.
    pub fn listen_on(mut self, addr: impl Into<String>) -> Self {
        self.listen = Some(addr.into());
        self
    }

    /// Require this shared-secret token in every `HELLO`/`RESUME`.
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        self.token = token.into();
        self
    }

    /// Join mode: admit `expected_workers` externally launched workers
    /// instead of spawning children.
    pub fn joinable(mut self, expected_workers: usize) -> Self {
        self.expected_workers = Some(expected_workers);
        self
    }

    /// How long to wait for each joining worker before degrading it to
    /// the crashed-worker path.
    pub fn join_deadline(mut self, deadline: Duration) -> Self {
        self.join_deadline = deadline;
        self
    }

    /// Override the reconnect schedule ([`ReconnectPolicy::none`]
    /// restores "socket death is worker death").
    pub fn reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = policy;
        self
    }

    /// Toggle LZ4 wire compression for state blobs.
    pub fn compressed(mut self, on: bool) -> Self {
        self.compression = on;
        self
    }
}

/// One connected worker socket, TCP or UDS, behind a common face.
pub(crate) enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Conn {
    pub(crate) fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Uds(s) => Conn::Uds(s.try_clone()?),
        })
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            Conn::Uds(s) => s.set_nonblocking(nb),
        }
    }

    pub(crate) fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Conn::Uds(s) => s.set_read_timeout(t),
        }
    }

    /// Sever both directions without closing the descriptor — the kernel
    /// half of "kill the socket, not the process".
    pub(crate) fn shutdown(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            Conn::Uds(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Uds(s) => s.flush(),
        }
    }
}

/// Connect to a controller address of the form `tcp:host:port` or
/// `uds:/path` (the format [`NetTransport`] advertises via
/// `ALBIC_WORKER_CONNECT`).
pub(crate) fn connect(addr: &str) -> io::Result<Conn> {
    if let Some(hostport) = addr.strip_prefix("tcp:") {
        return Ok(Conn::Tcp(TcpStream::connect(hostport)?));
    }
    #[cfg(unix)]
    if let Some(path) = addr.strip_prefix("uds:") {
        return Ok(Conn::Uds(UnixStream::connect(path)?));
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("unsupported worker address {addr:?}"),
    ))
}

/// Read one complete frame off a blocking connection (the handshake and
/// daemon reader path). A read timeout surfaces as the underlying
/// `WouldBlock`/`TimedOut` error.
pub(crate) fn read_frame_blocking(
    conn: &mut Conn,
    fb: &mut FrameBuffer,
) -> io::Result<(u8, Vec<u8>)> {
    let mut buf = [0u8; IO_CHUNK];
    loop {
        if let Some(frame) = fb
            .next_frame()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        {
            return Ok(frame);
        }
        let n = match conn.read(&mut buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        fb.extend(&buf[..n]);
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Uds(l) => l.accept().map(|(s, _)| Conn::Uds(s)),
        }
    }
}

/// Bind a UDS listener, probing a pre-existing socket file first: if
/// nothing accepts on it (connect refused), it is a leftover from a
/// controller that panicked or was SIGKILLed — unlink it and claim the
/// path. If something *does* accept, a live controller owns it.
#[cfg(unix)]
fn bind_uds(path: &std::path::Path) -> io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => match UnixStream::connect(path) {
            Ok(_) => Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("{}: a live controller is bound", path.display()),
            )),
            Err(probe) if probe.kind() == io::ErrorKind::ConnectionRefused => {
                std::fs::remove_file(path)?;
                UnixListener::bind(path)
            }
            Err(_) => Err(e),
        },
        Err(e) => Err(e),
    }
}

/// A connection the acceptor routed to a stub.
enum Admission {
    /// A fresh worker's `HELLO` (launched or joining).
    Fresh { conn: Conn, fb: FrameBuffer },
    /// A surviving worker's `RESUME` after a socket cut.
    Resume {
        conn: Conn,
        fb: FrameBuffer,
        /// The worker's inbound delivery mark — resend after this.
        delivered: u64,
        /// The routing version the worker last installed.
        routing_version: u64,
    },
}

/// Per-worker record in the shared registry: how the acceptor reaches
/// the stub, the latest socket (for scripted drops), and the kill
/// poison.
struct NodeEntry {
    admit: mpsc::Sender<Admission>,
    /// Clone of the stub's current socket, so
    /// [`Transport::drop_connection`] can sever it from outside.
    conn: Option<Conn>,
    /// Set by [`Transport::inject_fault`] *before* the SIGKILL: the stub
    /// refuses to resume a poisoned session, so a kill deterministically
    /// defeats the reconnect policy instead of racing it.
    poisoned: Arc<AtomicBool>,
}

/// State shared between the transport, the acceptor thread, and every
/// stub.
struct NetShared {
    token: String,
    registry: StdMutex<HashMap<NodeId, NodeEntry>>,
    /// `HELLO`s that arrived before their stub registered (a joiner
    /// dialing in between listener bind and `spawn_worker`).
    parked: StdMutex<HashMap<NodeId, (Conn, FrameBuffer)>>,
    shutdown: AtomicBool,
}

impl NetShared {
    fn set_conn(&self, node: NodeId, conn: &Conn) {
        if let Ok(clone) = conn.try_clone() {
            if let Some(entry) = self.registry.lock().expect("registry lock").get_mut(&node) {
                entry.conn = Some(clone);
            }
        }
    }
}

/// The networked [`Transport`]: one worker process per node — launched
/// as a child or admitted as a joiner — bridged onto the runtime's
/// channel fabric by a per-worker stub thread running a resumable
/// session. Fault injection poisons the session and SIGKILLs the child:
/// a real crash, recovered through the same checkpoint/replay path as
/// in-process faults.
pub struct NetTransport {
    shared: Arc<NetShared>,
    acceptor: Option<JoinHandle<()>>,
    /// The address workers connect back to (also what `ALBIC_WORKER_CONNECT`
    /// carries).
    connect_addr: String,
    worker_cmd: PathBuf,
    expected_workers: Option<usize>,
    join_deadline: Duration,
    reconnect: ReconnectPolicy,
    compression: bool,
    children: HashMap<NodeId, Arc<StdMutex<Child>>>,
    /// Reply correlations, shared across every stub: a migration's reply
    /// registered while encoding for worker A resolves off worker B's
    /// socket.
    correlator: Arc<Correlator>,
    /// The UDS path to unlink on shutdown, if any.
    uds_path: Option<PathBuf>,
}

impl NetTransport {
    /// Bind the controller listener (TCP `127.0.0.1:0` or a fresh UDS
    /// path under the temp directory, unless [`NetConfig::listen`] names
    /// an address) and start the admission acceptor.
    pub fn new(cfg: NetConfig) -> io::Result<NetTransport> {
        let (listener, connect_addr, uds_path) = match cfg.kind {
            SocketKind::Tcp => {
                let l = TcpListener::bind(cfg.listen.as_deref().unwrap_or("127.0.0.1:0"))?;
                let addr = format!("tcp:{}", l.local_addr()?);
                (Listener::Tcp(l), addr, None)
            }
            #[cfg(unix)]
            SocketKind::Uds => {
                let path = match &cfg.listen {
                    Some(p) => PathBuf::from(p),
                    None => std::env::temp_dir().join(format!(
                        "albic-{}-{}.sock",
                        std::process::id(),
                        UDS_COUNTER.fetch_add(1, Ordering::Relaxed)
                    )),
                };
                let l = bind_uds(&path)?;
                let addr = format!("uds:{}", path.display());
                (Listener::Uds(l), addr, Some(path))
            }
        };
        match &listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            Listener::Uds(l) => l.set_nonblocking(true)?,
        }
        let shared = Arc::new(NetShared {
            token: cfg.token,
            registry: StdMutex::new(HashMap::new()),
            parked: StdMutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("albic-acceptor".into())
            .spawn(move || acceptor_loop(listener, acceptor_shared))?;
        Ok(NetTransport {
            shared,
            acceptor: Some(acceptor),
            connect_addr,
            worker_cmd: cfg.worker_cmd,
            expected_workers: cfg.expected_workers,
            join_deadline: cfg.join_deadline,
            reconnect: cfg.reconnect,
            compression: cfg.compression,
            children: HashMap::new(),
            correlator: Arc::new(Correlator::new()),
            uds_path,
        })
    }

    /// The address workers dial (`tcp:host:port` or `uds:/path`). In
    /// join mode, point externally launched daemons here via
    /// `ALBIC_WORKER_CONNECT`.
    pub fn connect_addr(&self) -> &str {
        &self.connect_addr
    }

    /// Wait up to [`REAP_PATIENCE`] for a child to exit, then SIGKILL it;
    /// always reaps.
    fn reap(child: &Arc<StdMutex<Child>>) {
        let mut child = child.lock().expect("child lock");
        let deadline = Instant::now() + REAP_PATIENCE;
        loop {
            match child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5))
                }
                _ => break,
            }
        }
        let _ = child.kill();
        let _ = child.wait();
    }
}

impl Transport for NetTransport {
    fn spawn_worker(
        &mut self,
        spawn: WorkerSpawn,
    ) -> Result<JoinHandle<WorkerMailbox>, FailedSpawn> {
        let node = spawn.node;
        // Launch the child unless joiners are expected to dial in.
        let child = if self.expected_workers.is_none() {
            match Command::new(&self.worker_cmd)
                .env(ENV_CONNECT, &self.connect_addr)
                .env(ENV_NODE, node.raw().to_string())
                .env(ENV_TOKEN, &self.shared.token)
                .stdin(Stdio::null())
                .spawn()
            {
                Ok(c) => Some(Arc::new(StdMutex::new(c))),
                Err(e) => {
                    return Err(FailedSpawn {
                        error: TransportError::SpawnFailed {
                            node,
                            reason: format!("launch {}: {e}", self.worker_cmd.display()),
                        },
                        mailbox: WorkerMailbox(spawn.inbox),
                    })
                }
            }
        } else {
            None
        };
        let (admit_tx, admit_rx) = mpsc::channel();
        let poisoned = Arc::new(AtomicBool::new(false));
        self.shared.registry.lock().expect("registry lock").insert(
            node,
            NodeEntry {
                admit: admit_tx.clone(),
                conn: None,
                poisoned: Arc::clone(&poisoned),
            },
        );
        // A joiner may have dialed in before this stub existed.
        if let Some((conn, fb)) = self
            .shared
            .parked
            .lock()
            .expect("parked lock")
            .remove(&node)
        {
            let _ = admit_tx.send(Admission::Fresh { conn, fb });
        }
        if let Some(c) = &child {
            self.children.insert(node, Arc::clone(c));
        }
        let ctx = StubCtx {
            shared: Arc::clone(&self.shared),
            correlator: Arc::clone(&self.correlator),
            admissions: admit_rx,
            poisoned,
            child,
            policy: self.reconnect,
            compress: self.compression,
            handshake_patience: if self.expected_workers.is_some() {
                self.join_deadline
            } else {
                HANDSHAKE_PATIENCE
            },
        };
        // The spawn rides through a cell so a failed thread spawn can
        // hand the inbox back for the crashed-worker path instead of
        // panicking the controller.
        let cell = Arc::new(StdMutex::new(Some((spawn, ctx))));
        let cell2 = Arc::clone(&cell);
        match std::thread::Builder::new()
            .name(format!("albic-stub-{node}"))
            .spawn(move || {
                let (spawn, ctx) = cell2
                    .lock()
                    .expect("stub cell")
                    .take()
                    .expect("stub context consumed once");
                WorkerMailbox(stub_main(spawn, ctx))
            }) {
            Ok(handle) => Ok(handle),
            Err(e) => {
                let (spawn, ctx) = cell
                    .lock()
                    .expect("stub cell")
                    .take()
                    .expect("stub context consumed once");
                self.shared
                    .registry
                    .lock()
                    .expect("registry lock")
                    .remove(&node);
                self.children.remove(&node);
                if let Some(child) = &ctx.child {
                    let mut c = child.lock().expect("child lock");
                    let _ = c.kill();
                    let _ = c.wait();
                }
                Err(FailedSpawn {
                    error: TransportError::SpawnFailed {
                        node,
                        reason: format!("spawn stub thread: {e}"),
                    },
                    mailbox: WorkerMailbox(spawn.inbox),
                })
            }
        }
    }

    fn broadcast_routing(&self, version: u64, assignment: &[NodeId], peers: &Peers<'_>) {
        // Ships through each worker's inbox so it is FIFO-ordered with
        // the control messages that rely on it (e.g. the Extract right
        // after a migration flip).
        for tx in peers.0.read().values() {
            let _ = tx.send(Msg::RoutingUpdate {
                version,
                assignment: assignment.to_vec(),
            });
        }
    }

    fn inject_fault(&mut self, node: NodeId, _peers: &Peers<'_>) -> bool {
        // A real kill. Poison the session *first*: the stub checks the
        // flag on every turn and the acceptor refuses a poisoned RESUME,
        // so the kill deterministically defeats the reconnect policy —
        // it cannot race a re-dial into a resurrected session.
        let mut hit = false;
        if let Some(entry) = self
            .shared
            .registry
            .lock()
            .expect("registry lock")
            .get(&node)
        {
            entry.poisoned.store(true, Ordering::Release);
            if let Some(conn) = &entry.conn {
                let _ = conn.shutdown();
            }
            hit = true;
        }
        if let Some(child) = self.children.remove(&node) {
            let mut c = child.lock().expect("child lock");
            let _ = c.kill();
            let _ = c.wait();
            hit = true;
        }
        hit
    }

    fn drop_connection(&mut self, node: NodeId) -> bool {
        // Scripted network fault: sever the socket with shutdown(2) but
        // leave the process alone. The session must resume.
        match self
            .shared
            .registry
            .lock()
            .expect("registry lock")
            .get(&node)
        {
            Some(NodeEntry {
                conn: Some(conn), ..
            }) => conn.shutdown().is_ok(),
            _ => false,
        }
    }

    fn worker_gone(&mut self, node: NodeId) {
        self.shared
            .registry
            .lock()
            .expect("registry lock")
            .remove(&node);
        self.shared
            .parked
            .lock()
            .expect("parked lock")
            .remove(&node);
        if let Some(child) = self.children.remove(&node) {
            Self::reap(&child);
        }
        // The session died with the worker: any reply id it might replay
        // must not resolve a stale channel.
        self.correlator.purge_session();
    }

    fn end_period(&mut self) {
        self.correlator.advance_gen();
    }

    fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for (_, child) in self.children.drain() {
            Self::reap(&child);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.registry.lock().expect("registry lock").clear();
        self.shared.parked.lock().expect("parked lock").clear();
        if let Some(path) = self.uds_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for NetTransport {
    fn drop(&mut self) {
        // Backstop: never leak worker processes or socket files, even if
        // the runtime was dropped without a clean shutdown.
        self.shutdown();
    }
}

/// The admission acceptor: polls the listener and routes every inbound
/// connection's first frame (`HELLO` or `RESUME`) to the owning stub.
fn acceptor_loop(listener: Listener, shared: Arc<NetShared>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok(conn) => {
                // Admission reads one frame with a bounded timeout; run
                // it off-thread so a slow dialer cannot stall siblings.
                let cell = Arc::new(StdMutex::new(Some(conn)));
                let cell2 = Arc::clone(&cell);
                let sh = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("albic-admit".into())
                    .spawn(move || {
                        if let Some(conn) = cell2.lock().expect("admit cell").take() {
                            admit(conn, &sh);
                        }
                    })
                    .is_ok();
                if !spawned {
                    // Degraded: admit inline rather than dropping the
                    // connection.
                    if let Some(conn) = cell.lock().expect("admit cell").take() {
                        admit(conn, &shared);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Read and verify one connection's first frame, then hand it to the
/// owning stub. Everything unverifiable — bad magic, wrong token, a
/// resume for a poisoned or unknown session — drops the connection on
/// the floor (fail-closed).
fn admit(mut conn: Conn, shared: &NetShared) {
    if conn.set_read_timeout(Some(ADMIT_PATIENCE)).is_err() {
        return;
    }
    let mut fb = FrameBuffer::new();
    let Ok((kind, body)) = read_frame_blocking(&mut conn, &mut fb) else {
        return;
    };
    let mut r = Reader::new(&body);
    match kind {
        wire::FRAME_HELLO => {
            let Ok((node, token)) = wire::decode_hello(&mut r) else {
                return;
            };
            if token != shared.token {
                eprintln!("albic: rejecting worker {node}: bad join token");
                return;
            }
            if conn.set_read_timeout(None).is_err() {
                return;
            }
            if let Conn::Tcp(s) = &conn {
                let _ = s.set_nodelay(true);
            }
            let registry = shared.registry.lock().expect("registry lock");
            match registry.get(&node) {
                Some(entry) => {
                    let _ = entry.admit.send(Admission::Fresh { conn, fb });
                }
                None => {
                    // Joined before its stub exists: park until
                    // spawn_worker claims it.
                    drop(registry);
                    shared
                        .parked
                        .lock()
                        .expect("parked lock")
                        .insert(node, (conn, fb));
                }
            }
        }
        wire::FRAME_RESUME => {
            let Ok(resume) = wire::decode_resume(&mut r) else {
                return;
            };
            if resume.token != shared.token {
                eprintln!("albic: rejecting resume for {}: bad token", resume.node);
                return;
            }
            if conn.set_read_timeout(None).is_err() {
                return;
            }
            if let Conn::Tcp(s) = &conn {
                let _ = s.set_nodelay(true);
            }
            let registry = shared.registry.lock().expect("registry lock");
            if let Some(entry) = registry.get(&resume.node) {
                if entry.poisoned.load(Ordering::Acquire) {
                    return; // killed workers stay dead
                }
                let _ = entry.admit.send(Admission::Resume {
                    conn,
                    fb,
                    delivered: resume.delivered,
                    routing_version: resume.routing_version,
                });
            }
        }
        _ => {}
    }
}

/// Everything a stub needs besides its [`WorkerSpawn`].
struct StubCtx {
    shared: Arc<NetShared>,
    correlator: Arc<Correlator>,
    admissions: mpsc::Receiver<Admission>,
    poisoned: Arc<AtomicBool>,
    child: Option<Arc<StdMutex<Child>>>,
    policy: ReconnectPolicy,
    compress: bool,
    handshake_patience: Duration,
}

/// The controller-side bridge between one worker's inbox channel and its
/// socket: waits for admission, sends `INIT`, then runs the session loop
/// until the worker is gone for good. Returns the inbox for the
/// runtime's graveyard — the stub exiting *is* the worker dying, as far
/// as the runtime can tell.
fn stub_main(spawn: WorkerSpawn, ctx: StubCtx) -> Receiver<Msg> {
    let node = spawn.node;
    // Phase 1: wait for the worker's HELLO (concurrently with every
    // sibling stub — a worker that dies pre-HELLO stalls only itself).
    let deadline = Instant::now() + ctx.handshake_patience;
    let (mut conn, fb) = loop {
        if ctx.poisoned.load(Ordering::Acquire) {
            return spawn.inbox;
        }
        match ctx.admissions.recv_timeout(Duration::from_millis(10)) {
            Ok(Admission::Fresh { conn, fb }) => break (conn, fb),
            Ok(Admission::Resume { .. }) => {} // no session yet: drop it
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if let Some(child) = &ctx.child {
                    if let Ok(Some(status)) = child.lock().expect("child lock").try_wait() {
                        eprintln!(
                            "albic: {}",
                            TransportError::SpawnFailed {
                                node,
                                reason: format!("worker exited before connecting: {status}"),
                            }
                        );
                        return spawn.inbox;
                    }
                }
                if Instant::now() >= deadline {
                    eprintln!("albic: {}", TransportError::HandshakeTimeout { node });
                    if let Some(child) = &ctx.child {
                        let mut c = child.lock().expect("child lock");
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    return spawn.inbox;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return spawn.inbox,
        }
    };
    // Phase 2: bootstrap. Version before assignment: a reroute racing
    // the snapshot leaves the replica one broadcast behind, which the
    // next broadcast repairs — never a fresh table under a stale stamp
    // masking it.
    let init_sent = (|| -> io::Result<()> {
        let routing_version = spawn.routing.version();
        let assignment = spawn.routing.read().assignment().to_vec();
        let ops = spawn
            .topology
            .operators()
            .iter()
            .map(|spec| wire::InitOp {
                name: spec.name.clone(),
                logic: spec.logic.name().to_string(),
                key_groups: spec.key_groups,
                is_source: spec.is_source,
            })
            .collect();
        let edges = spawn
            .topology
            .edges()
            .iter()
            .map(|&(a, b)| (a.raw(), b.raw()))
            .collect();
        let init = wire::InitMsg {
            cfg: spawn.cfg,
            ops,
            edges,
            routing_version,
            assignment,
            compression: ctx.compress,
            reconnect: ctx.policy,
        };
        let mut w = Writer::new();
        wire::encode_init(&init, &mut w);
        conn.write_all(&wire::frame_bytes(wire::FRAME_INIT, &w.into_bytes()))?;
        conn.flush()?;
        conn.set_nonblocking(true)
    })();
    if init_sent.is_err() {
        eprintln!("albic: worker {node} died during bootstrap");
        return spawn.inbox;
    }
    ctx.shared.set_conn(node, &conn);
    stub_session(conn, fb, spawn, ctx)
}

/// The stub's session loop: nonblocking socket turns bridging the inbox
/// channel onto sequence-numbered frames, with resume-on-cut.
fn stub_session(
    mut conn: Conn,
    mut fb: FrameBuffer,
    spawn: WorkerSpawn,
    ctx: StubCtx,
) -> Receiver<Msg> {
    let WorkerSpawn {
        node,
        inbox,
        gauge,
        routing,
        senders,
        gauges,
        dropped,
        cfg,
        ..
    } = spawn;
    let mut send = SendSequencer::new(SEND_QUEUE_LIMIT);
    let mut recv = RecvSequencer::new();
    // Outbound bytes not yet accepted by the socket; `woff` is the
    // consumed prefix. While non-empty, the inbox is not pulled — that
    // is what carries backpressure through to the credit gauge.
    let mut wbuf: Vec<u8> = Vec::new();
    let mut woff = 0usize;
    // Highest parked sequence number already staged into `wbuf` on the
    // current socket; reset to the peer's delivery mark on resume.
    let mut staged = 0u64;
    let mut closing = false;
    let mut sock_dead = false;
    let mut buf = [0u8; IO_CHUNK];
    'session: loop {
        // 0. A poisoned session is a killed worker: die now, never resume.
        if ctx.poisoned.load(Ordering::Acquire) {
            let _ = conn.shutdown();
            return inbox;
        }
        // 0b. The socket is gone: resume or degrade to a corpse.
        if sock_dead {
            let _ = conn.shutdown();
            wbuf.clear();
            woff = 0;
            if closing {
                // Shutdown was underway; the tail is lost but so is the job.
                return inbox;
            }
            if ctx.policy.attempts == 0 {
                return inbox;
            }
            match wait_resume(node, &ctx, &mut send, &recv, &routing) {
                Some((new_conn, new_fb, peer_delivered)) => {
                    send.ack(peer_delivered);
                    staged = peer_delivered;
                    ctx.shared.set_conn(node, &new_conn);
                    conn = new_conn;
                    fb = new_fb;
                    sock_dead = false;
                }
                None => return inbox,
            }
            continue 'session;
        }
        let mut progress = false;
        // 1. Drain the socket.
        loop {
            match conn.read(&mut buf) {
                Ok(0) => {
                    sock_dead = true;
                    break;
                }
                Ok(n) => {
                    progress = true;
                    fb.extend(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    sock_dead = true;
                    break;
                }
            }
        }
        // 2. Handle complete frames. A *garbled* peer (bad framing or an
        // undecodable body) is hostile or broken — fail closed, no
        // resume. A sequence *gap* is a lossy cut — tear the socket down
        // and let the resume resend heal it.
        loop {
            match fb.next_frame() {
                Ok(Some((kind, body))) => match on_frame(
                    kind,
                    &body,
                    &mut send,
                    &mut recv,
                    &ctx.correlator,
                    &senders,
                    &gauges,
                    &dropped,
                    &cfg,
                ) {
                    Ok(FrameOutcome::Handled) => {}
                    Ok(FrameOutcome::Gap) => {
                        sock_dead = true;
                        break;
                    }
                    Err(e) => {
                        eprintln!("albic: worker {node} sent an undecodable frame: {e}");
                        let _ = conn.shutdown();
                        return inbox;
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    eprintln!("albic: worker {node} broke framing: {e}");
                    let _ = conn.shutdown();
                    return inbox;
                }
            }
        }
        if sock_dead {
            continue 'session;
        }
        // 3. Owe the peer an explicit ack? (Piggybacking below also
        // counts, but a read-heavy stub must still prune the daemon's
        // resend queue.)
        if recv.ack_due() {
            wbuf.extend_from_slice(&wire::frame_bytes(
                wire::FRAME_ACK,
                &recv.delivered().to_le_bytes(),
            ));
            recv.mark_acked();
        }
        // 4. Stage parked frames (bounded per turn so reads interleave).
        let mut newly_staged = staged;
        for (seq, kind, body) in send.pending(staged) {
            if wbuf.len() >= STAGE_LIMIT {
                break;
            }
            wbuf.extend_from_slice(&wire::session_frame(kind, seq, recv.delivered(), body));
            newly_staged = seq;
        }
        if newly_staged > staged {
            staged = newly_staged;
            recv.mark_acked();
        }
        // 5. Flush as much of the outbound buffer as the socket takes.
        while woff < wbuf.len() {
            match conn.write(&wbuf[woff..]) {
                Ok(0) => {
                    sock_dead = true;
                    break;
                }
                Ok(n) => {
                    progress = true;
                    woff += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    sock_dead = true;
                    break;
                }
            }
        }
        if sock_dead {
            continue 'session;
        }
        if woff > 0 && woff == wbuf.len() {
            wbuf.clear();
            woff = 0;
        }
        if closing && staged == send.highest() && wbuf.is_empty() {
            break;
        }
        // 6. Encode inbox messages only once the buffer drained and the
        // resend queue has room, a bounded burst per turn so inbound
        // replies stay interleaved.
        if wbuf.is_empty() && !closing {
            for _ in 0..64 {
                if !send.has_room() {
                    break;
                }
                let msg = match inbox.try_recv() {
                    Ok(msg) => msg,
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        closing = true;
                        break;
                    }
                };
                progress = true;
                if matches!(msg, Msg::DataBatch(_) | Msg::DataChunk(_)) {
                    // The batch left the queue for the wire: release its
                    // credit (the daemon meters its own inbox).
                    gauge.dequeued();
                }
                if matches!(msg, Msg::Shutdown | Msg::Crash) {
                    closing = true;
                }
                match msg {
                    Msg::RoutingUpdate {
                        version,
                        assignment,
                    } => {
                        send.push(
                            wire::FRAME_ROUTING,
                            wire::encode_routing(version, &assignment),
                        );
                    }
                    msg => {
                        let mut w = Writer::new();
                        wire::encode_msg(&msg, &mut w, ctx.compress, &mut |p| {
                            ctx.correlator.register(p)
                        });
                        send.push(wire::FRAME_MSG, w.into_bytes());
                    }
                }
                if closing {
                    break;
                }
            }
        }
        if !progress {
            std::thread::sleep(PRESSURE_POLL);
        }
    }
    inbox
}

/// Hold a cut session open for the worker to `RESUME`, up to the
/// policy's patience. Returns the fresh socket and the peer's delivery
/// mark, or `None` when the window expires (the worker is declared
/// crashed).
fn wait_resume(
    node: NodeId,
    ctx: &StubCtx,
    send: &mut SendSequencer,
    recv: &RecvSequencer,
    routing: &RoutingShared,
) -> Option<(Conn, FrameBuffer, u64)> {
    let deadline = Instant::now() + ctx.policy.patience();
    loop {
        if ctx.poisoned.load(Ordering::Acquire) {
            return None;
        }
        match ctx.admissions.recv_timeout(Duration::from_millis(25)) {
            Ok(Admission::Resume {
                mut conn,
                fb,
                delivered,
                routing_version,
            }) => {
                // A delivery mark this stream never produced (or one
                // regressing below the acked prefix) is a liar's resume.
                if !send.valid_resume_point(delivered) {
                    eprintln!(
                        "albic: rejecting resume for {node}: claimed delivery {delivered} \
                         outside acked {}..={}",
                        send.acked(),
                        send.highest()
                    );
                    continue;
                }
                if conn
                    .write_all(&wire::frame_bytes(
                        wire::FRAME_RESUMED,
                        &wire::encode_resumed(recv.delivered()),
                    ))
                    .and_then(|()| conn.flush())
                    .is_err()
                {
                    continue;
                }
                if conn.set_nonblocking(true).is_err() {
                    continue;
                }
                // Top the resumed stream up with a fresh routing snapshot
                // when the worker fell behind: it lands after the
                // replayed suffix, so the replica converges on the
                // current table.
                if routing_version < routing.version() {
                    let version = routing.version();
                    let assignment = routing.read().assignment().to_vec();
                    send.push(
                        wire::FRAME_ROUTING,
                        wire::encode_routing(version, &assignment),
                    );
                }
                return Some((conn, fb, delivered));
            }
            Ok(Admission::Fresh { .. }) => {} // mid-job HELLO: drop it
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if Instant::now() >= deadline {
                    eprintln!(
                        "albic: worker {node} did not resume within {:?}; declaring it crashed",
                        ctx.policy.patience()
                    );
                    return None;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return None,
        }
    }
}

enum FrameOutcome {
    Handled,
    Gap,
}

/// One inbound frame on a stub's socket: an ack to apply, then (for
/// session-bearing kinds) dedup before dispatch — a reply to resolve or
/// a message to relay to a peer worker's inbox.
#[allow(clippy::too_many_arguments)]
fn on_frame(
    kind: u8,
    body: &[u8],
    send: &mut SendSequencer,
    recv: &mut RecvSequencer,
    correlator: &Correlator,
    senders: &SenderMap,
    gauges: &GaugeMap,
    dropped: &Arc<AtomicU64>,
    cfg: &RuntimeConfig,
) -> Result<FrameOutcome, crate::codec::DecodeError> {
    match kind {
        wire::FRAME_ACK => {
            send.ack(wire::decode_ack(&mut Reader::new(body))?);
            Ok(FrameOutcome::Handled)
        }
        wire::FRAME_REPLY | wire::FRAME_FORWARD => {
            let (seq, ack, payload) = wire::split_session(body)?;
            send.ack(ack);
            match recv.accept(seq) {
                SeqVerdict::Fresh => {
                    dispatch_frame(kind, payload, correlator, senders, gauges, dropped, cfg)?;
                    Ok(FrameOutcome::Handled)
                }
                SeqVerdict::Duplicate => Ok(FrameOutcome::Handled),
                SeqVerdict::Gap => Ok(FrameOutcome::Gap),
            }
        }
        // Unknown frame kinds are ignored for forward compatibility.
        _ => Ok(FrameOutcome::Handled),
    }
}

/// Dispatch one deduplicated inbound payload.
fn dispatch_frame(
    kind: u8,
    payload: &[u8],
    correlator: &Correlator,
    senders: &SenderMap,
    gauges: &GaugeMap,
    dropped: &Arc<AtomicU64>,
    cfg: &RuntimeConfig,
) -> Result<(), crate::codec::DecodeError> {
    let mut r = Reader::new(payload);
    match kind {
        wire::FRAME_REPLY => {
            let id = r.get_u64()?;
            correlator.fire(id, &mut r)?;
        }
        wire::FRAME_FORWARD => {
            let dest = NodeId::new(r.get_u64()? as u32);
            // Decoded without an uplink: any reply handle inside is a
            // passthrough that survives the destination stub's re-encode
            // with its correlation id intact.
            let msg = wire::decode_msg(&mut r, None)?;
            match msg {
                msg @ (Msg::DataBatch(_) | Msg::DataChunk(_)) => {
                    let n = match &msg {
                        Msg::DataBatch(b) => b.len() as u64,
                        Msg::DataChunk(c) => c.visible_len() as u64,
                        _ => 0,
                    };
                    // The same gated hand-off a worker thread uses,
                    // including the bounded patience and overflow
                    // accounting on the destination's gauge.
                    if send_gated(
                        senders,
                        gauges,
                        cfg.channel_capacity,
                        WORKER_SEND_PATIENCE,
                        dest,
                        msg,
                    )
                    .is_err()
                    {
                        dropped.fetch_add(n, Ordering::Relaxed);
                    }
                }
                msg => {
                    // Control relays are never gated (matching the
                    // in-process rule); a dead destination's loss is
                    // handled by the liveness-aware coordinator waits.
                    if let Some(tx) = senders.read().get(&dest).cloned() {
                        let _ = tx.send(msg);
                    }
                }
            }
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A socket file left by a controller that never unlinked it (panic,
    /// SIGKILL) must be probed and reclaimed; a live listener must not.
    #[cfg(unix)]
    #[test]
    fn uds_bind_probes_stale_socket_files() {
        let path = std::env::temp_dir().join(format!(
            "albic-stale-probe-{}-{}.sock",
            std::process::id(),
            UDS_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        // Simulate the crashed controller: bind, then drop the listener
        // without removing the file (close() does not unlink).
        let stale = UnixListener::bind(&path).expect("bind stale");
        drop(stale);
        assert!(path.exists(), "socket file should outlive the listener");
        // The probe finds nothing accepting and reclaims the path.
        let reclaimed = bind_uds(&path).expect("reclaim stale socket");
        // A second bind while this listener is live must refuse.
        let err = bind_uds(&path).expect_err("live controller must not be evicted");
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        drop(reclaimed);
        let _ = std::fs::remove_file(&path);
    }
}
