//! The networked transport backend: worker child processes over
//! length-prefixed TCP or Unix-domain sockets.
//!
//! Topology is a star: the controller owns one listener and one socket
//! per worker; workers never connect to each other. Peer traffic (data
//! hand-off, state installs, epoch announcements) travels up the
//! sender's socket as a `FORWARD` frame and is relayed by the sender's
//! controller-side stub into the destination worker's inbox channel —
//! from where the destination's stub writes it down the other socket.
//! Two hops instead of one, but every existing coordinator wait, FIFO
//! argument and liveness check keeps working unchanged, because each
//! stub thread *is* its worker as far as the runtime can tell.
//!
//! A stub's socket is nonblocking in both directions, with a manual
//! outbound byte buffer. While that buffer is non-empty the stub does
//! not pull from its inbox — so the worker's credit gauge keeps
//! counting queued-but-unsent batches and injection backpressure works
//! exactly as in-process. Reads are drained before writes each turn,
//! so a reply can never be starved by bulk data: the two directions
//! cannot deadlock because every wait in the protocol is bounded.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, TryRecvError};

use albic_types::NodeId;

use crate::codec::{Reader, Writer};
use crate::runtime::{
    send_gated, GaugeMap, Msg, RuntimeConfig, SenderMap, PRESSURE_POLL, WORKER_SEND_PATIENCE,
};
use crate::transport::wire::{self, Correlator, FrameBuffer};
use crate::transport::{Peers, Transport, WorkerMailbox, WorkerSpawn};

/// How long the controller waits for a freshly launched worker process
/// to connect and say hello.
const HANDSHAKE_PATIENCE: Duration = Duration::from_secs(10);
/// How long [`Transport::worker_gone`] and shutdown wait for a child to
/// exit on its own before escalating to SIGKILL.
const REAP_PATIENCE: Duration = Duration::from_secs(5);
/// Socket read/write scratch size.
const IO_CHUNK: usize = 64 * 1024;

/// Environment variable carrying the controller address a worker daemon
/// must connect back to (`tcp:host:port` or `uds:/path`).
pub(crate) const ENV_CONNECT: &str = "ALBIC_WORKER_CONNECT";
/// Environment variable carrying the node id the worker was launched for.
pub(crate) const ENV_NODE: &str = "ALBIC_WORKER_NODE";

/// Monotonic counter making UDS socket paths unique within a process.
static UDS_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Which socket family the controller listens on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketKind {
    /// TCP on `127.0.0.1` (an OS-assigned port).
    Tcp,
    /// A Unix-domain socket under the system temp directory.
    #[cfg(unix)]
    Uds,
}

/// Configuration for [`NetTransport`]: where the worker daemon binary
/// lives and which socket family to use.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Path to the worker daemon executable (a binary calling
    /// [`crate::transport::worker_main`]).
    pub worker_cmd: PathBuf,
    /// Socket family for the controller↔worker connections.
    pub kind: SocketKind,
}

impl NetConfig {
    /// TCP-loopback config for the given worker binary.
    pub fn tcp(worker_cmd: impl Into<PathBuf>) -> Self {
        NetConfig {
            worker_cmd: worker_cmd.into(),
            kind: SocketKind::Tcp,
        }
    }

    /// Unix-domain-socket config for the given worker binary.
    #[cfg(unix)]
    pub fn uds(worker_cmd: impl Into<PathBuf>) -> Self {
        NetConfig {
            worker_cmd: worker_cmd.into(),
            kind: SocketKind::Uds,
        }
    }
}

/// One connected worker socket, TCP or UDS, behind a common face.
pub(crate) enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Conn {
    pub(crate) fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Uds(s) => Conn::Uds(s.try_clone()?),
        })
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            Conn::Uds(s) => s.set_nonblocking(nb),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Conn::Uds(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Uds(s) => s.flush(),
        }
    }
}

/// Connect to a controller address of the form `tcp:host:port` or
/// `uds:/path` (the format [`NetTransport`] advertises via
/// [`ENV_CONNECT`]).
pub(crate) fn connect(addr: &str) -> io::Result<Conn> {
    if let Some(hostport) = addr.strip_prefix("tcp:") {
        return Ok(Conn::Tcp(TcpStream::connect(hostport)?));
    }
    #[cfg(unix)]
    if let Some(path) = addr.strip_prefix("uds:") {
        return Ok(Conn::Uds(UnixStream::connect(path)?));
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("unsupported worker address {addr:?}"),
    ))
}

/// Read one complete frame off a blocking connection (the handshake and
/// daemon reader path). A read timeout surfaces as the underlying
/// `WouldBlock`/`TimedOut` error.
pub(crate) fn read_frame_blocking(
    conn: &mut Conn,
    fb: &mut FrameBuffer,
) -> io::Result<(u8, Vec<u8>)> {
    let mut buf = [0u8; IO_CHUNK];
    loop {
        if let Some(frame) = fb
            .next_frame()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        {
            return Ok(frame);
        }
        let n = match conn.read(&mut buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        fb.extend(&buf[..n]);
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Uds(l) => l.accept().map(|(s, _)| Conn::Uds(s)),
        }
    }
}

/// The networked [`Transport`]: launches one worker process per node,
/// handshakes it onto a framed socket, and bridges that socket onto the
/// runtime's channel fabric with a per-worker stub thread. Fault
/// injection SIGKILLs the child process — a real crash, recovered
/// through the same checkpoint/replay path as in-process faults.
pub struct NetTransport {
    listener: Listener,
    /// The address workers connect back to (also what [`ENV_CONNECT`]
    /// carries).
    connect_addr: String,
    worker_cmd: PathBuf,
    children: HashMap<NodeId, Child>,
    /// Reply correlations, shared across every stub: a migration's reply
    /// registered while encoding for worker A resolves off worker B's
    /// socket.
    correlator: Arc<Correlator>,
    /// The UDS path to unlink on shutdown, if any.
    uds_path: Option<PathBuf>,
}

impl NetTransport {
    /// Bind the controller listener (TCP `127.0.0.1:0`, or a fresh UDS
    /// path under the temp directory).
    pub fn new(cfg: NetConfig) -> io::Result<NetTransport> {
        let (listener, connect_addr, uds_path) = match cfg.kind {
            SocketKind::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0")?;
                let addr = format!("tcp:{}", l.local_addr()?);
                (Listener::Tcp(l), addr, None)
            }
            #[cfg(unix)]
            SocketKind::Uds => {
                let path = std::env::temp_dir().join(format!(
                    "albic-{}-{}.sock",
                    std::process::id(),
                    UDS_COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                let l = UnixListener::bind(&path)?;
                let addr = format!("uds:{}", path.display());
                (Listener::Uds(l), addr, Some(path))
            }
        };
        match &listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            Listener::Uds(l) => l.set_nonblocking(true)?,
        }
        Ok(NetTransport {
            listener,
            connect_addr,
            worker_cmd: cfg.worker_cmd,
            children: HashMap::new(),
            correlator: Arc::new(Correlator::new()),
            uds_path,
        })
    }

    /// Launch the child, accept its connection, verify its hello, and
    /// send the job bootstrap. Returns the connected (still blocking)
    /// socket.
    fn spawn_and_handshake(&mut self, spawn: &WorkerSpawn) -> io::Result<(Conn, FrameBuffer)> {
        let node = spawn.node;
        let mut child = Command::new(&self.worker_cmd)
            .env(ENV_CONNECT, &self.connect_addr)
            .env(ENV_NODE, spawn.node.raw().to_string())
            .stdin(Stdio::null())
            .spawn()?;
        // Accept with a deadline, watching the child: a binary that
        // crashes on startup must fail the spawn, not hang it.
        let deadline = Instant::now() + HANDSHAKE_PATIENCE;
        let mut conn = loop {
            match self.listener.accept() {
                Ok(conn) => break conn,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if let Ok(Some(status)) = child.try_wait() {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            format!("worker {node} exited before connecting: {status}"),
                        ));
                    }
                    if Instant::now() >= deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("worker {node} never connected"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(e);
                }
            }
        };
        // The handshake's frame buffer outlives it: any bytes the HELLO
        // read pulled in past the frame boundary belong to the stub loop,
        // not the floor.
        let mut fb = FrameBuffer::new();
        let handshake = (|| -> io::Result<()> {
            conn.set_read_timeout(Some(HANDSHAKE_PATIENCE))?;
            let (kind, body) = read_frame_blocking(&mut conn, &mut fb)?;
            let hello = (kind == wire::FRAME_HELLO)
                .then(|| wire::decode_hello(&mut Reader::new(&body)).ok())
                .flatten();
            if hello != Some(node) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("worker {node} sent a bad hello"),
                ));
            }
            // Version before assignment: a reroute racing the snapshot
            // leaves the replica one broadcast behind, which the next
            // broadcast repairs — never a fresh table under a stale stamp
            // masking it.
            let routing_version = spawn.routing.version();
            let assignment = spawn.routing.read().assignment().to_vec();
            let ops = spawn
                .topology
                .operators()
                .iter()
                .map(|spec| wire::InitOp {
                    name: spec.name.clone(),
                    logic: spec.logic.name().to_string(),
                    key_groups: spec.key_groups,
                    is_source: spec.is_source,
                })
                .collect();
            let edges = spawn
                .topology
                .edges()
                .iter()
                .map(|&(a, b)| (a.raw(), b.raw()))
                .collect();
            let init = wire::InitMsg {
                cfg: spawn.cfg,
                ops,
                edges,
                routing_version,
                assignment,
            };
            let mut w = Writer::new();
            wire::encode_init(&init, &mut w);
            conn.write_all(&wire::frame_bytes(wire::FRAME_INIT, &w.into_bytes()))?;
            conn.flush()?;
            conn.set_read_timeout(None)?;
            if let Conn::Tcp(s) = &conn {
                s.set_nodelay(true)?;
            }
            Ok(())
        })();
        if let Err(e) = handshake {
            let _ = child.kill();
            let _ = child.wait();
            return Err(e);
        }
        self.children.insert(node, child);
        Ok((conn, fb))
    }

    /// Wait up to [`REAP_PATIENCE`] for a child to exit, then SIGKILL it;
    /// always reaps.
    fn reap(mut child: Child) {
        let deadline = Instant::now() + REAP_PATIENCE;
        loop {
            match child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5))
                }
                _ => break,
            }
        }
        let _ = child.kill();
        let _ = child.wait();
    }
}

impl Transport for NetTransport {
    fn spawn_worker(&mut self, spawn: WorkerSpawn) -> JoinHandle<WorkerMailbox> {
        let node = spawn.node;
        match self.spawn_and_handshake(&spawn) {
            Ok((conn, fb)) => {
                let correlator = Arc::clone(&self.correlator);
                std::thread::Builder::new()
                    .name(format!("albic-stub-{node}"))
                    .spawn(move || WorkerMailbox(stub_loop(conn, fb, spawn, correlator)))
                    .expect("spawn stub thread")
            }
            Err(e) => {
                // The worker never came up: produce an instant corpse.
                // Liveness keys off `is_finished`, so the runtime sees
                // exactly a crashed worker and recovery takes over.
                eprintln!("albic: failed to launch worker {node}: {e}");
                std::thread::Builder::new()
                    .name(format!("albic-stub-{node}"))
                    .spawn(move || WorkerMailbox(spawn.inbox))
                    .expect("spawn stub thread")
            }
        }
    }

    fn broadcast_routing(&self, version: u64, assignment: &[NodeId], peers: &Peers<'_>) {
        // Ships through each worker's inbox so it is FIFO-ordered with
        // the control messages that rely on it (e.g. the Extract right
        // after a migration flip).
        for tx in peers.0.read().values() {
            let _ = tx.send(Msg::RoutingUpdate {
                version,
                assignment: assignment.to_vec(),
            });
        }
    }

    fn inject_fault(&mut self, node: NodeId, _peers: &Peers<'_>) -> bool {
        // A real kill: SIGKILL the worker process. Its socket drops, its
        // stub thread exits, and the runtime observes a corpse exactly as
        // with an in-process crash.
        match self.children.remove(&node) {
            Some(mut child) => {
                let _ = child.kill();
                let _ = child.wait();
                true
            }
            None => false,
        }
    }

    fn worker_gone(&mut self, node: NodeId) {
        if let Some(child) = self.children.remove(&node) {
            Self::reap(child);
        }
    }

    fn end_period(&mut self) {
        self.correlator.advance_gen();
    }

    fn shutdown(&mut self) {
        for (_, child) in self.children.drain() {
            Self::reap(child);
        }
        if let Some(path) = self.uds_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for NetTransport {
    fn drop(&mut self) {
        // Backstop: never leak worker processes or socket files, even if
        // the runtime was dropped without a clean shutdown.
        self.shutdown();
    }
}

/// The controller-side bridge between one worker's inbox channel and its
/// socket. Runs until the socket dies (the stub then exits like a
/// crashed worker) or a `Shutdown`/`Crash` was flushed (graceful exit).
/// Returns the inbox for the runtime's graveyard.
fn stub_loop(
    mut conn: Conn,
    mut fb: FrameBuffer,
    spawn: WorkerSpawn,
    correlator: Arc<Correlator>,
) -> Receiver<Msg> {
    let WorkerSpawn {
        node,
        inbox,
        gauge,
        senders,
        gauges,
        dropped,
        cfg,
        ..
    } = spawn;
    if conn.set_nonblocking(true).is_err() {
        return inbox;
    }
    // Outbound bytes not yet accepted by the socket; `woff` is the
    // consumed prefix. While non-empty, the inbox is not pulled — that
    // is what carries backpressure through to the credit gauge.
    let mut pending: Vec<u8> = Vec::new();
    let mut woff = 0usize;
    let mut closing = false;
    let mut buf = [0u8; IO_CHUNK];
    'stub: loop {
        let mut progress = false;
        // 1. Drain the socket; a closed or garbled peer kills the stub.
        loop {
            match conn.read(&mut buf) {
                Ok(0) => break 'stub,
                Ok(n) => {
                    progress = true;
                    fb.extend(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break 'stub,
            }
        }
        loop {
            match fb.next_frame() {
                Ok(Some((kind, body))) => {
                    if let Err(e) =
                        handle_frame(kind, &body, &correlator, &senders, &gauges, &dropped, &cfg)
                    {
                        // A garbled peer is treated as a dead one; say
                        // why before degrading, because the runtime only
                        // sees "worker crashed".
                        eprintln!("albic: worker {node} sent an undecodable frame: {e}");
                        break 'stub;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    eprintln!("albic: worker {node} broke framing: {e}");
                    break 'stub;
                }
            }
        }
        // 2. Flush as much of the outbound buffer as the socket takes.
        while woff < pending.len() {
            match conn.write(&pending[woff..]) {
                Ok(0) => break 'stub,
                Ok(n) => {
                    progress = true;
                    woff += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break 'stub,
            }
        }
        if woff > 0 && woff == pending.len() {
            pending.clear();
            woff = 0;
        }
        if closing && pending.is_empty() {
            break;
        }
        // 3. Encode inbox messages only once the buffer drained, a
        // bounded burst per turn so inbound replies stay interleaved.
        if pending.is_empty() && !closing {
            for _ in 0..64 {
                let msg = match inbox.try_recv() {
                    Ok(msg) => msg,
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        closing = true;
                        break;
                    }
                };
                progress = true;
                if matches!(msg, Msg::DataBatch(_) | Msg::DataChunk(_)) {
                    // The batch left the queue for the wire: release its
                    // credit (the daemon meters its own inbox).
                    gauge.dequeued();
                }
                if matches!(msg, Msg::Shutdown | Msg::Crash) {
                    closing = true;
                }
                match msg {
                    Msg::RoutingUpdate {
                        version,
                        assignment,
                    } => pending.extend_from_slice(&wire::frame_bytes(
                        wire::FRAME_ROUTING,
                        &wire::encode_routing(version, &assignment),
                    )),
                    msg => {
                        let mut w = Writer::new();
                        wire::encode_msg(&msg, &mut w, &mut |p| correlator.register(p));
                        pending.extend_from_slice(&wire::frame_bytes(
                            wire::FRAME_MSG,
                            &w.into_bytes(),
                        ));
                    }
                }
                if closing {
                    break;
                }
            }
        }
        if !progress {
            std::thread::sleep(PRESSURE_POLL);
        }
    }
    inbox
}

/// One inbound frame on a stub's socket: a reply to resolve, or a
/// message to relay to a peer worker's inbox.
fn handle_frame(
    kind: u8,
    body: &[u8],
    correlator: &Correlator,
    senders: &SenderMap,
    gauges: &GaugeMap,
    dropped: &Arc<AtomicU64>,
    cfg: &RuntimeConfig,
) -> Result<(), crate::codec::DecodeError> {
    let mut r = Reader::new(body);
    match kind {
        wire::FRAME_REPLY => {
            let id = r.get_u64()?;
            correlator.fire(id, &mut r)?;
        }
        wire::FRAME_FORWARD => {
            let dest = NodeId::new(r.get_u64()? as u32);
            // Decoded without an uplink: any reply handle inside is a
            // passthrough that survives the destination stub's re-encode
            // with its correlation id intact.
            let msg = wire::decode_msg(&mut r, None)?;
            match msg {
                msg @ (Msg::DataBatch(_) | Msg::DataChunk(_)) => {
                    let n = match &msg {
                        Msg::DataBatch(b) => b.len() as u64,
                        Msg::DataChunk(c) => c.visible_len() as u64,
                        _ => 0,
                    };
                    // The same gated hand-off a worker thread uses,
                    // including the bounded patience and overflow
                    // accounting on the destination's gauge.
                    if send_gated(
                        senders,
                        gauges,
                        cfg.channel_capacity,
                        WORKER_SEND_PATIENCE,
                        dest,
                        msg,
                    )
                    .is_err()
                    {
                        dropped.fetch_add(n, Ordering::Relaxed);
                    }
                }
                msg => {
                    // Control relays are never gated (matching the
                    // in-process rule); a dead destination's loss is
                    // handled by the liveness-aware coordinator waits.
                    if let Some(tx) = senders.read().get(&dest).cloned() {
                        let _ = tx.send(msg);
                    }
                }
            }
        }
        // Unknown frame kinds are ignored for forward compatibility.
        _ => {}
    }
    Ok(())
}
