//! The worker-boundary transport subsystem.
//!
//! Everything that crosses between the controller and a worker — data
//! batches/chunks, quiesce and epoch barriers, migration extract/install,
//! checkpoint snapshot/rollback, stats gathers — goes through a
//! [`Transport`]. Two backends implement it:
//!
//! * [`InProcessTransport`] (the default): workers are threads wired with
//!   crossbeam channels, exactly the substrate every existing test runs
//!   on.
//! * [`NetTransport`]: workers are real processes connected over
//!   length-prefixed TCP or Unix-domain sockets — launched as children by
//!   the controller, or started on *other machines* and admitted through
//!   an authenticated `HELLO` join handshake (see
//!   [`NetConfig::joinable`]). Each socket is bridged onto the same
//!   channel fabric by a per-peer stub thread.
//!
//! The bridge is deliberately thin: a stub thread *is* the worker as far
//! as the runtime can tell. It pulls from the worker's inbox channel and
//! writes frames; it reads reply frames and resolves them into the
//! original reply channels. Liveness keys off the stub's
//! `JoinHandle::is_finished` — but socket death is *not* stub death: the
//! link runs a sequence-numbered session (see [`session`]) and a cut
//! socket is held open for the worker to `RESUME` under the configured
//! [`ReconnectPolicy`], replaying exactly the frames
//! the other side never delivered. Only when that policy is exhausted
//! does the stub exit and degrade *exactly* like a crashed in-process
//! worker: `alive_senders` stops waiting on it, `wait_reply` returns
//! short, and checkpoint recovery takes over. Fault injection upgrades
//! accordingly: in networked mode, [`Transport::inject_fault`] poisons
//! the session *and then* SIGKILLs the worker process, so a real kill
//! deterministically defeats the reconnect policy rather than racing it.
//!
//! See `docs/TRANSPORT.md` for the frame format, session/reconnect
//! semantics, and the two-machine join workflow.

pub(crate) mod lz4;
pub mod session;
pub(crate) mod wire;

mod net;
mod worker;

pub use net::{NetConfig, NetTransport, SocketKind};
pub use session::{ReconnectPolicy, RecvSequencer, SendSequencer, SeqVerdict};
pub use worker::{worker_main, OperatorRegistry};

use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::Receiver;

use albic_types::NodeId;

use crate::codec::Reader;
use crate::runtime::{GaugeMap, Msg, RoutingShared, RuntimeConfig, SenderMap, WorkerGauge};
use crate::topology::Topology;

/// Everything a transport needs to bring one worker to life. Opaque
/// outside the engine crate: the runtime assembles it, a [`Transport`]
/// consumes it.
pub struct WorkerSpawn {
    pub(crate) node: NodeId,
    pub(crate) inbox: Receiver<Msg>,
    pub(crate) gauge: Arc<WorkerGauge>,
    pub(crate) topology: Arc<Topology>,
    pub(crate) routing: Arc<RoutingShared>,
    pub(crate) senders: SenderMap,
    pub(crate) gauges: GaugeMap,
    pub(crate) dropped: Arc<AtomicU64>,
    pub(crate) cfg: RuntimeConfig,
}

/// What a finished worker leaves behind: its inbox receiver, which the
/// runtime drains into the graveyard so in-flight tuples are not lost.
pub struct WorkerMailbox(pub(crate) Receiver<Msg>);

/// A borrowed view of the per-worker sender map, letting transports
/// address control messages to live peers.
pub struct Peers<'a>(pub(crate) &'a SenderMap);

/// A typed transport failure, surfaced instead of a generic io error so
/// callers (and log readers) can tell a handshake timeout from a binary
/// that would not launch.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// The worker did not complete its `HELLO` handshake within the
    /// patience window (launched workers) or join deadline (joiners).
    HandshakeTimeout {
        /// The worker that never said hello.
        node: NodeId,
    },
    /// The worker could not be brought up at all — the binary failed to
    /// launch, or the bridging thread could not be spawned.
    SpawnFailed {
        /// The worker that failed to spawn.
        node: NodeId,
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::HandshakeTimeout { node } => {
                write!(f, "worker {node} timed out before completing its handshake")
            }
            TransportError::SpawnFailed { node, reason } => {
                write!(f, "worker {node} failed to spawn: {reason}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// A [`Transport::spawn_worker`] failure that still hands the worker's
/// inbox back, so the runtime can treat the node as instantly crashed
/// (drain the mailbox into the graveyard, recover its groups) instead of
/// aborting the job.
pub struct FailedSpawn {
    /// What went wrong.
    pub error: TransportError,
    /// The unclaimed inbox, for the crashed-worker path.
    pub(crate) mailbox: WorkerMailbox,
}

impl FailedSpawn {
    /// Reclaim the mailbox for the graveyard.
    pub(crate) fn into_parts(self) -> (TransportError, WorkerMailbox) {
        (self.error, self.mailbox)
    }
}

impl fmt::Debug for FailedSpawn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FailedSpawn")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

/// The worker boundary. Implementations own how workers run (threads vs
/// processes) and how messages reach them (channels vs sockets); the
/// runtime's reconfiguration, recovery, and statistics logic is identical
/// above either backend.
pub trait Transport: Send {
    /// Bring one worker to life. The returned handle's `is_finished` is
    /// the worker's liveness signal: it must become true when — and only
    /// when — the worker can no longer process messages. On failure the
    /// worker's inbox rides back in the [`FailedSpawn`] so the runtime
    /// can degrade to the crashed-worker path instead of aborting.
    fn spawn_worker(
        &mut self,
        spawn: WorkerSpawn,
    ) -> Result<JoinHandle<WorkerMailbox>, FailedSpawn>;

    /// Push a routing-table update to every worker. In-process workers
    /// share the routing table by `Arc`, so the default substrate does
    /// nothing; networked workers each hold a replica that must be
    /// refreshed before migration traffic referencing the new version
    /// reaches them.
    fn broadcast_routing(&self, version: u64, assignment: &[NodeId], peers: &Peers<'_>);

    /// Kill one worker for fault injection. Returns `false` if the worker
    /// is already gone. In-process this delivers a poison message;
    /// networked, it poisons the session (so the kill cannot race the
    /// reconnect policy) and SIGKILLs the worker process.
    fn inject_fault(&mut self, node: NodeId, peers: &Peers<'_>) -> bool;

    /// Sever one worker's *connection* without touching the worker
    /// itself — a scripted network fault. Returns `true` if a live
    /// connection was cut. Meaningless in-process (no socket exists), so
    /// the default returns `false`.
    fn drop_connection(&mut self, _node: NodeId) -> bool {
        false
    }

    /// The runtime observed this worker dead and reclaimed its handle;
    /// release any per-worker resources (e.g. reap the child process).
    fn worker_gone(&mut self, node: NodeId);

    /// A statistics period ended and the data plane is settled — a safe
    /// point for housekeeping (e.g. pruning resolved reply correlations).
    fn end_period(&mut self) {}

    /// The job is over; tear down all transport resources.
    fn shutdown(&mut self) {}
}

/// The default backend: workers are threads in this process, wired with
/// the same crossbeam channels the runtime has always used.
#[derive(Debug, Default)]
pub struct InProcessTransport;

impl Transport for InProcessTransport {
    fn spawn_worker(
        &mut self,
        spawn: WorkerSpawn,
    ) -> Result<JoinHandle<WorkerMailbox>, FailedSpawn> {
        let node = spawn.node;
        // The spawn rides through a cell so a failed thread spawn can
        // hand the inbox back for the crashed-worker path (the closure
        // is consumed by the failed Builder::spawn either way).
        let cell = Arc::new(std::sync::Mutex::new(Some(spawn)));
        let cell2 = Arc::clone(&cell);
        std::thread::Builder::new()
            .name(format!("albic-worker-{node}"))
            .spawn(move || {
                let spawn = cell2
                    .lock()
                    .expect("worker cell")
                    .take()
                    .expect("worker spawn consumed once");
                WorkerMailbox(crate::runtime::WorkerCtx::from_spawn(spawn, None).run())
            })
            .map_err(|e| {
                let spawn = cell
                    .lock()
                    .expect("worker cell")
                    .take()
                    .expect("worker spawn consumed once");
                FailedSpawn {
                    error: TransportError::SpawnFailed {
                        node,
                        reason: format!("spawn worker thread: {e}"),
                    },
                    mailbox: WorkerMailbox(spawn.inbox),
                }
            })
    }

    fn broadcast_routing(&self, _version: u64, _assignment: &[NodeId], _peers: &Peers<'_>) {}

    fn inject_fault(&mut self, node: NodeId, peers: &Peers<'_>) -> bool {
        match peers.0.read().get(&node) {
            Some(tx) => tx.send(Msg::Crash).is_ok(),
            None => false,
        }
    }

    fn worker_gone(&mut self, _node: NodeId) {}
}

/// Which transport a job runs on — see [`crate::runtime::Runtime::start_with_options`].
#[derive(Debug, Clone, Default)]
pub enum TransportOptions {
    /// Workers are threads in this process (the default, and the test
    /// substrate).
    #[default]
    InProcess,
    /// Workers are child processes (or joined remote daemons) connected
    /// over TCP or Unix-domain sockets.
    Net(NetConfig),
}

/// Drive every frame decoder with arbitrary bytes. Exists for the
/// fail-closed property test: whatever `bytes` contains, this must
/// return without panicking and without attacker-sized allocations.
pub fn fuzz_decode(bytes: &[u8]) {
    // Through the frame assembler first, as a socket would.
    let mut fb = wire::FrameBuffer::new();
    fb.extend(bytes);
    while let Ok(Some((kind, body))) = fb.next_frame() {
        let mut r = Reader::new(&body);
        let _ = match kind {
            wire::FRAME_HELLO => wire::decode_hello(&mut r).map(|_| ()),
            wire::FRAME_INIT => wire::decode_init(&mut r).map(|_| ()),
            wire::FRAME_RESUME => wire::decode_resume(&mut r).map(|_| ()),
            wire::FRAME_RESUMED => wire::decode_resumed(&mut r).map(|_| ()),
            wire::FRAME_ACK => wire::decode_ack(&mut r).map(|_| ()),
            // Session-bearing kinds: split the (seq, ack) header, then
            // decode the payload as the stub/daemon would.
            wire::FRAME_MSG => wire::split_session(&body)
                .and_then(|(_, _, p)| wire::decode_msg(&mut Reader::new(p), None))
                .map(|_| ()),
            wire::FRAME_FORWARD => wire::split_session(&body).and_then(|(_, _, p)| {
                let mut pr = Reader::new(p);
                pr.get_u64()
                    .and_then(|_| wire::decode_msg(&mut pr, None))
                    .map(|_| ())
            }),
            wire::FRAME_ROUTING => wire::split_session(&body)
                .and_then(|(_, _, p)| wire::decode_routing(&mut Reader::new(p)))
                .map(|_| ()),
            _ => Ok(()),
        };
    }
    // And each body decoder on the raw bytes, bypassing framing.
    let _ = wire::decode_msg(&mut Reader::new(bytes), None);
    let _ = wire::decode_init(&mut Reader::new(bytes));
    let _ = wire::decode_hello(&mut Reader::new(bytes));
    let _ = wire::decode_resume(&mut Reader::new(bytes));
    let _ = wire::decode_resumed(&mut Reader::new(bytes));
    let _ = wire::decode_ack(&mut Reader::new(bytes));
    let _ = wire::decode_routing(&mut Reader::new(bytes));
    let _ = wire::split_session(bytes);
    // The LZ4 decompressor also faces the network (inside state blobs).
    let _ = lz4::decompress(bytes, 4096);
    let _ = crate::chunk::StreamChunk::decode(&mut Reader::new(bytes));
    let _ = Reader::new(bytes).get_value();
}
