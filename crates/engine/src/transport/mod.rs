//! The worker-boundary transport subsystem.
//!
//! Everything that crosses between the controller and a worker — data
//! batches/chunks, quiesce and epoch barriers, migration extract/install,
//! checkpoint snapshot/rollback, stats gathers — goes through a
//! [`Transport`]. Two backends implement it:
//!
//! * [`InProcessTransport`] (the default): workers are threads wired with
//!   crossbeam channels, exactly the substrate every existing test runs
//!   on.
//! * [`NetTransport`]: workers are real child processes connected over
//!   length-prefixed TCP or Unix-domain sockets. The controller launches
//!   each worker from a daemon binary (see [`worker_main`]), performs a
//!   hello/init handshake carrying the worker's identity, and bridges
//!   each socket onto the same channel fabric with a per-peer stub
//!   thread.
//!
//! The bridge is deliberately thin: a stub thread *is* the worker as far
//! as the runtime can tell. It pulls from the worker's inbox channel and
//! writes frames; it reads reply frames and resolves them into the
//! original reply channels. When the socket dies, the stub thread exits —
//! and because all liveness in the runtime keys off
//! `JoinHandle::is_finished`, a dead socket degrades *exactly* like a
//! crashed in-process worker: `alive_senders` stops waiting on it,
//! `wait_reply` returns short, and recovery takes over. Fault injection
//! upgrades accordingly: in networked mode, [`Transport::inject_fault`]
//! SIGKILLs the child process rather than sending a simulated crash
//! message, driving checkpoint/replay recovery end-to-end over the
//! network.
//!
//! See `docs/TRANSPORT.md` for the frame format, handshake, and failure
//! semantics.

pub(crate) mod wire;

mod net;
mod worker;

pub use net::{NetConfig, NetTransport, SocketKind};
pub use worker::{worker_main, OperatorRegistry};

use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::Receiver;

use albic_types::NodeId;

use crate::codec::Reader;
use crate::runtime::{GaugeMap, Msg, RoutingShared, RuntimeConfig, SenderMap, WorkerGauge};
use crate::topology::Topology;

/// Everything a transport needs to bring one worker to life. Opaque
/// outside the engine crate: the runtime assembles it, a [`Transport`]
/// consumes it.
pub struct WorkerSpawn {
    pub(crate) node: NodeId,
    pub(crate) inbox: Receiver<Msg>,
    pub(crate) gauge: Arc<WorkerGauge>,
    pub(crate) topology: Arc<Topology>,
    pub(crate) routing: Arc<RoutingShared>,
    pub(crate) senders: SenderMap,
    pub(crate) gauges: GaugeMap,
    pub(crate) dropped: Arc<AtomicU64>,
    pub(crate) cfg: RuntimeConfig,
}

/// What a finished worker leaves behind: its inbox receiver, which the
/// runtime drains into the graveyard so in-flight tuples are not lost.
pub struct WorkerMailbox(pub(crate) Receiver<Msg>);

/// A borrowed view of the per-worker sender map, letting transports
/// address control messages to live peers.
pub struct Peers<'a>(pub(crate) &'a SenderMap);

/// The worker boundary. Implementations own how workers run (threads vs
/// processes) and how messages reach them (channels vs sockets); the
/// runtime's reconfiguration, recovery, and statistics logic is identical
/// above either backend.
pub trait Transport: Send {
    /// Bring one worker to life. The returned handle's `is_finished` is
    /// the worker's liveness signal: it must become true when — and only
    /// when — the worker can no longer process messages.
    fn spawn_worker(&mut self, spawn: WorkerSpawn) -> JoinHandle<WorkerMailbox>;

    /// Push a routing-table update to every worker. In-process workers
    /// share the routing table by `Arc`, so the default substrate does
    /// nothing; networked workers each hold a replica that must be
    /// refreshed before migration traffic referencing the new version
    /// reaches them.
    fn broadcast_routing(&self, version: u64, assignment: &[NodeId], peers: &Peers<'_>);

    /// Kill one worker for fault injection. Returns `false` if the worker
    /// is already gone. In-process this delivers a poison message;
    /// networked, it SIGKILLs the child process.
    fn inject_fault(&mut self, node: NodeId, peers: &Peers<'_>) -> bool;

    /// The runtime observed this worker dead and reclaimed its handle;
    /// release any per-worker resources (e.g. reap the child process).
    fn worker_gone(&mut self, node: NodeId);

    /// A statistics period ended and the data plane is settled — a safe
    /// point for housekeeping (e.g. pruning resolved reply correlations).
    fn end_period(&mut self) {}

    /// The job is over; tear down all transport resources.
    fn shutdown(&mut self) {}
}

/// The default backend: workers are threads in this process, wired with
/// the same crossbeam channels the runtime has always used.
#[derive(Debug, Default)]
pub struct InProcessTransport;

impl Transport for InProcessTransport {
    fn spawn_worker(&mut self, spawn: WorkerSpawn) -> JoinHandle<WorkerMailbox> {
        let node = spawn.node;
        std::thread::Builder::new()
            .name(format!("albic-worker-{node}"))
            .spawn(move || WorkerMailbox(crate::runtime::WorkerCtx::from_spawn(spawn, None).run()))
            .expect("spawn worker thread")
    }

    fn broadcast_routing(&self, _version: u64, _assignment: &[NodeId], _peers: &Peers<'_>) {}

    fn inject_fault(&mut self, node: NodeId, peers: &Peers<'_>) -> bool {
        match peers.0.read().get(&node) {
            Some(tx) => tx.send(Msg::Crash).is_ok(),
            None => false,
        }
    }

    fn worker_gone(&mut self, _node: NodeId) {}
}

/// Which transport a job runs on — see [`crate::runtime::Runtime::start_with_options`].
#[derive(Debug, Clone, Default)]
pub enum TransportOptions {
    /// Workers are threads in this process (the default, and the test
    /// substrate).
    #[default]
    InProcess,
    /// Workers are child processes connected over TCP or Unix-domain
    /// sockets.
    Net(NetConfig),
}

/// Drive every frame decoder with arbitrary bytes. Exists for the
/// fail-closed property test: whatever `bytes` contains, this must
/// return without panicking and without attacker-sized allocations.
pub fn fuzz_decode(bytes: &[u8]) {
    // Through the frame assembler first, as a socket would.
    let mut fb = wire::FrameBuffer::new();
    fb.extend(bytes);
    while let Ok(Some((kind, body))) = fb.next_frame() {
        let mut r = Reader::new(&body);
        let _ = match kind {
            wire::FRAME_HELLO => wire::decode_hello(&mut r).map(|_| ()),
            wire::FRAME_INIT => wire::decode_init(&mut r).map(|_| ()),
            wire::FRAME_MSG => wire::decode_msg(&mut r, None).map(|_| ()),
            wire::FRAME_FORWARD => r
                .get_u64()
                .and_then(|_| wire::decode_msg(&mut r, None))
                .map(|_| ()),
            wire::FRAME_ROUTING => wire::decode_routing(&mut r).map(|_| ()),
            _ => Ok(()),
        };
    }
    // And each body decoder on the raw bytes, bypassing framing.
    let _ = wire::decode_msg(&mut Reader::new(bytes), None);
    let _ = wire::decode_init(&mut Reader::new(bytes));
    let _ = wire::decode_hello(&mut Reader::new(bytes));
    let _ = wire::decode_routing(&mut Reader::new(bytes));
    let _ = crate::chunk::StreamChunk::decode(&mut Reader::new(bytes));
    let _ = Reader::new(bytes).get_value();
}
