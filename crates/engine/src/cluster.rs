//! The processing cluster: node lifecycle and capacities.
//!
//! Horizontal scaling (§4.2) adds nodes and *marks* nodes for removal; a
//! marked node keeps processing until the balancer has drained all of its
//! key groups, at which point the adaptation framework terminates it
//! (Algorithm 1, lines 1-3).

use albic_types::NodeId;
use serde::{Deserialize, Serialize};

/// One node's descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Node id (unique for the lifetime of the cluster, never reused).
    pub id: NodeId,
    /// Relative capacity (1.0 = reference m1.medium-like worker).
    pub capacity: f64,
    /// Marked for removal by the scaling algorithm (`kill_i = 1`).
    pub killed: bool,
}

/// The set of processing nodes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cluster {
    nodes: Vec<NodeInfo>,
    next_id: u32,
}

impl Cluster {
    /// A cluster of `n` homogeneous nodes of capacity 1.
    pub fn homogeneous(n: usize) -> Self {
        let mut c = Cluster::default();
        for _ in 0..n {
            c.add_node(1.0);
        }
        c
    }

    /// A cluster with the given per-node capacities.
    pub fn with_capacities(caps: &[f64]) -> Self {
        let mut c = Cluster::default();
        for &cap in caps {
            c.add_node(cap);
        }
        c
    }

    /// The ids the next `k` calls to [`Cluster::add_node`] will assign.
    ///
    /// Node ids are deterministic, so a policy can plan migrations onto
    /// nodes it is about to request (the framework re-plans after a
    /// scaling decision, Algorithm 1 line 7) and the engine will create
    /// exactly those ids when it applies the plan.
    pub fn peek_next_ids(&self, k: usize) -> Vec<NodeId> {
        (0..k as u32)
            .map(|i| NodeId::new(self.next_id + i))
            .collect()
    }

    /// Add a node with a given relative capacity; returns its id.
    pub fn add_node(&mut self, capacity: f64) -> NodeId {
        assert!(capacity > 0.0, "capacity must be positive");
        let id = NodeId::new(self.next_id);
        self.next_id += 1;
        self.nodes.push(NodeInfo {
            id,
            capacity,
            killed: false,
        });
        id
    }

    /// Mark a node for removal (it keeps running until drained). Returns
    /// `false` if the node does not exist.
    pub fn mark_for_removal(&mut self, id: NodeId) -> bool {
        match self.nodes.iter_mut().find(|n| n.id == id) {
            Some(n) => {
                n.killed = true;
                true
            }
            None => false,
        }
    }

    /// Unmark a node previously marked for removal.
    pub fn unmark(&mut self, id: NodeId) -> bool {
        match self.nodes.iter_mut().find(|n| n.id == id) {
            Some(n) => {
                n.killed = false;
                true
            }
            None => false,
        }
    }

    /// Terminate (actually remove) a node. The caller must have drained it
    /// first; the engine asserts this where it has the routing table.
    pub fn terminate(&mut self, id: NodeId) -> bool {
        let before = self.nodes.len();
        self.nodes.retain(|n| n.id != id);
        self.nodes.len() != before
    }

    /// All current nodes (alive and marked).
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Look up a node.
    pub fn get(&self, id: NodeId) -> Option<&NodeInfo> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// `true` if the node exists and is marked for removal.
    pub fn is_killed(&self, id: NodeId) -> bool {
        self.get(id).is_some_and(|n| n.killed)
    }

    /// Nodes not marked for removal (the paper's set `A`).
    pub fn alive(&self) -> impl Iterator<Item = &NodeInfo> {
        self.nodes.iter().filter(|n| !n.killed)
    }

    /// Nodes marked for removal (the paper's set `B`).
    pub fn marked(&self) -> impl Iterator<Item = &NodeInfo> {
        self.nodes.iter().filter(|n| n.killed)
    }

    /// Number of nodes (alive + marked).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_cluster() {
        let c = Cluster::homogeneous(5);
        assert_eq!(c.len(), 5);
        assert!(c.nodes().iter().all(|n| n.capacity == 1.0 && !n.killed));
        assert_eq!(c.alive().count(), 5);
        assert_eq!(c.marked().count(), 0);
    }

    #[test]
    fn mark_and_terminate_lifecycle() {
        let mut c = Cluster::homogeneous(3);
        let victim = c.nodes()[1].id;
        assert!(c.mark_for_removal(victim));
        assert!(c.is_killed(victim));
        assert_eq!(c.alive().count(), 2);
        assert_eq!(c.marked().count(), 1);

        assert!(c.terminate(victim));
        assert_eq!(c.len(), 2);
        assert!(c.get(victim).is_none());
        assert!(!c.terminate(victim), "double-terminate is a no-op");
    }

    #[test]
    fn node_ids_are_never_reused() {
        let mut c = Cluster::homogeneous(2);
        let old = c.nodes()[1].id;
        c.terminate(old);
        let fresh = c.add_node(1.0);
        assert_ne!(fresh, old);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn unmark_restores_alive_status() {
        let mut c = Cluster::homogeneous(2);
        let id = c.nodes()[0].id;
        c.mark_for_removal(id);
        assert!(c.unmark(id));
        assert!(!c.is_killed(id));
    }

    #[test]
    fn heterogeneous_capacities() {
        let c = Cluster::with_capacities(&[1.0, 2.0, 0.5]);
        assert_eq!(c.nodes()[1].capacity, 2.0);
        assert_eq!(c.nodes()[2].capacity, 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        Cluster::default().add_node(0.0);
    }
}
