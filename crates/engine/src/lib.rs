//! A parallel stream processing engine (PSPE) substrate.
//!
//! The paper implements its reconfiguration techniques on Apache Storm;
//! this crate is the from-scratch Rust equivalent the rest of the workspace
//! builds on. It provides:
//!
//! * [`tuple`](mod@tuple) / [`codec`] — the `⟨key, value, ts⟩` data model and a small
//!   self-contained binary codec used for state serialization.
//! * [`operator`] — the operator abstraction: opaque user logic over
//!   key-group-partitioned state, plus typed-state helpers.
//! * [`topology`] — operator DAGs with per-operator key-group spaces and
//!   the four partitioning patterns of §4.3.1.
//! * [`routing`] — key → key group → node routing tables.
//! * [`cluster`] — the node set: capacities, heterogeneity, nodes marked
//!   for removal by horizontal scaling, add/terminate.
//! * [`stats`] — per-SPL statistics: `gLoad_k`, `load_i`, the
//!   `out(g_i, g_j)` communication matrix, state sizes, bottleneck
//!   resource selection.
//! * [`cost`] — the load/cost model: processing cost, cross-node
//!   serialization/deserialization cost (what collocation saves), the
//!   migration cost model `mc_k = α·|σ_k|`.
//! * [`checkpoint`] — the incremental, log-structured checkpoint store:
//!   per-key-group base images plus bounded delta layers compacted at
//!   period boundaries, with a spill tier for cold key groups so total
//!   state can exceed memory.
//! * [`fault`] — deterministic fault injection ([`fault::FaultPlan`] /
//!   [`fault::FaultInjector`]) and the recovery vocabulary: recovery
//!   shares the migration machinery (checkpointed state restored through
//!   the same install path, re-homing through the routing table), so
//!   reconfiguration and fault tolerance are one mechanism.
//! * [`migration`] — direct state migration (Madsen & Zhou, CIKM'15):
//!   redirect upstreams → buffer at destination → serialize & ship state →
//!   rebuild → replay buffer, with pause-time accounting.
//! * [`sim`] — a deterministic discrete-time cluster simulator driven by a
//!   [`sim::WorkloadModel`]; one tick = one statistics period (SPL). The
//!   paper-scale experiments (60 nodes, 1200 key groups, 90 periods) run
//!   in milliseconds here.
//! * [`runtime`] — a real multi-threaded runtime: one worker thread per
//!   node, a batched bounded data plane ([`runtime::RuntimeConfig`]) with
//!   backpressure at the ingestion edge ([`runtime::Injector`]), and the
//!   full migration protocol including buffering and replay. Examples and
//!   integration tests run actual jobs on it.
//! * [`substrate`] — the [`substrate::ReconfigEngine`] trait both execution
//!   modes implement: the period lifecycle (`terminate_drained` /
//!   `end_period` / `view` / `apply` / `history`) that controllers and
//!   policies drive without knowing which substrate is underneath.
//!
//! Reconfiguration *policies* (the paper's contribution and the baselines)
//! live in `albic-core`; this crate only defines the interface they
//! implement ([`reconfig::ReconfigPolicy`]) and executes their plans —
//! the Algorithm-1 control loop itself is `albic_core::controller`, and
//! the fluent front door that assembles topology, cluster, routing and
//! policy into a running job on either substrate is `albic_core::job`
//! (re-exported as `albic::job`). The constructors below are the
//! advanced-wiring layer that builder drives.
//!
//! # Example
//!
//! ```
//! use albic_engine::codec::{Reader, Writer};
//! use albic_engine::{Cluster, RoutingTable, Value};
//! use albic_types::NodeId;
//!
//! // A 4-node homogeneous cluster and a routing table spreading 8 key
//! // groups round-robin across it.
//! let cluster = Cluster::homogeneous(4);
//! assert_eq!(cluster.alive().count(), 4);
//! let routing = RoutingTable::from_assignment(
//!     (0..8u32).map(|g| NodeId::new(g % 4)).collect(),
//! );
//! assert_eq!(routing.len(), 8);
//! assert_eq!(routing.node_of(albic_types::KeyGroupId::new(5)), NodeId::new(1));
//!
//! // The state codec round-trips the tuple value model losslessly; this
//! // is the format key-group state travels in during migration.
//! let v = Value::List(vec![Value::Str("edit".into()), Value::Int(42)]);
//! let mut w = Writer::new();
//! w.put_value(&v);
//! let decoded = Reader::new(&w.into_bytes()).get_value().unwrap();
//! assert_eq!(decoded, v);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod chunk;
pub mod cluster;
pub mod codec;
pub mod cost;
pub mod fault;
pub mod migration;
pub mod operator;
pub mod reconfig;
pub mod routing;
pub mod runtime;
pub mod sim;
pub mod stats;
pub mod substrate;
pub mod topology;
pub mod transport;
pub mod tuple;

pub use checkpoint::{CheckpointMode, CheckpointStore, SpillConfig};
pub use chunk::{ChunkEmissions, ChunkSlice, ChunkSorter, StreamChunk};
pub use cluster::{Cluster, NodeInfo};
pub use cost::CostModel;
pub use fault::{FaultInjector, FaultKind, FaultPlan, RecoveryReport, TerminateError};
pub use migration::{Migration, MigrationReport};
pub use operator::{Emissions, Operator, StateBox};
pub use reconfig::{ClusterView, ReconfigPlan, ReconfigPolicy};
pub use routing::RoutingTable;
pub use runtime::{DataPlane, Injector, Runtime, RuntimeConfig};
pub use sim::{SimEngine, WorkloadModel, WorkloadSnapshot};
pub use stats::{NodePressure, PeriodStats};
pub use substrate::{
    ApplyReport, FailedMigration, MigrationFailure, PeriodRecord, ReconfigEngine, ReconfigMode,
};
pub use topology::{OperatorSpec, Topology, TopologyBuilder};
pub use transport::{
    InProcessTransport, NetConfig, NetTransport, OperatorRegistry, ReconnectPolicy, SocketKind,
    Transport, TransportError, TransportOptions,
};
pub use tuple::{Tuple, Value};
