//! Deterministic fault injection and the recovery vocabulary.
//!
//! The paper's integrative thesis extends to fault tolerance: recovering a
//! failed worker is *the same mechanism* as reconfiguring a healthy one —
//! key groups are re-homed through the routing table and their state is
//! rebuilt through the identical serialize/install path a migration uses,
//! except that the bytes come from the latest period-aligned checkpoint
//! instead of a live extract, and the post-checkpoint delta is replayed
//! from the bounded inject-side log.
//!
//! This module holds the substrate-independent pieces:
//!
//! * [`FaultPlan`] / [`FaultInjector`] — a *scripted* fault schedule
//!   ("kill node 2 before step 3") applied to any
//!   [`ReconfigEngine`]. Faults land at
//!   deterministic points (worker-message boundaries on the runtime,
//!   period boundaries on the simulator), so a failing scenario replays
//!   identically — the property the fault-injection tests build on.
//! * [`RecoveryReport`] — what one recovery pass did: which nodes failed,
//!   how many key groups were restored from the checkpoint, how many
//!   tuples the log replayed, and how long it took.
//! * [`recovery_placement`] — the deterministic re-homing of a dead
//!   node's key groups onto the survivors. Both substrates call this one
//!   function, which is why the same [`FaultPlan`] produces identical
//!   post-recovery routing on the simulator and the threaded runtime
//!   (pinned by `tests/substrate_equivalence.rs`).

use albic_types::{KeyGroupId, NodeId};

use crate::substrate::ReconfigEngine;

/// Outcome of one [`ReconfigEngine::recover`] call.
///
/// An empty report (`failed.is_empty()`) means no fault was detected —
/// the healthy-path cost of the recovery check is one scan over the
/// worker handles.
#[derive(Debug, Clone, Default, PartialEq)]
#[must_use = "inspect the report: lost workers and truncated replay are surfaced here"]
pub struct RecoveryReport {
    /// Nodes whose worker was found dead and was recovered.
    pub failed: Vec<NodeId>,
    /// Key groups re-homed from the failed nodes onto survivors and
    /// restored from the latest checkpoint.
    pub groups_restored: usize,
    /// Tuples replayed from the inject-side log on top of the restored
    /// checkpoint (the post-checkpoint delta).
    pub tuples_replayed: u64,
    /// Tuples that had fallen off the bounded log and could not be
    /// replayed — surfaced (also counted into the period's dropped
    /// tuples), never silently lost.
    pub log_truncated: u64,
    /// The period the restored checkpoint was captured at; `None` when
    /// recovery ran from the implicit empty initial checkpoint (or with
    /// checkpointing disabled).
    pub checkpoint_period: Option<u64>,
    /// Key groups whose checkpoint image stayed on the spill tier through
    /// the rollback: they were *not* shipped eagerly — workers fault them
    /// in from their files on first access, which is what keeps recovery
    /// time sublinear in total state.
    pub groups_spilled: usize,
    /// Wall-clock seconds the recovery took — measured on the threaded
    /// runtime, modeled (restore cost of the lost state, via the same
    /// `mc_k = α·|σ_k|` migration cost model) on the simulator.
    pub recovery_secs: f64,
}

impl RecoveryReport {
    /// `true` if this call actually recovered from a fault.
    pub fn recovered(&self) -> bool {
        !self.failed.is_empty()
    }
}

/// What a scripted fault does to its victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill the worker itself (thread poison / process `SIGKILL`). The
    /// node's key groups are lost and must be recovered from the latest
    /// checkpoint.
    Kill,
    /// Sever only the worker's *connection* (networked transport). The
    /// process stays alive and holds its state; the transport's
    /// [`crate::transport::ReconnectPolicy`] decides whether the session
    /// resumes or degrades into a [`FaultKind::Kill`]-equivalent crash.
    /// A no-op on substrates without sockets.
    DropSocket,
}

/// A scripted fault schedule: which nodes to kill (or disconnect) before
/// which steps.
///
/// Steps are counted by the driving [`FaultInjector`], one per
/// [`FaultInjector::advance`] call — by convention one adaptation round
/// (`Controller::step`), so "kill node 1 at step 2" means the fault lands
/// after two completed rounds, before the third.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<(u64, FaultKind, NodeId)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule `node` to be killed before `step`.
    pub fn kill(mut self, step: u64, node: NodeId) -> Self {
        self.faults.push((step, FaultKind::Kill, node));
        self
    }

    /// Schedule `node`'s connection to be severed before `step` (the
    /// process survives; see [`FaultKind::DropSocket`]).
    pub fn drop_socket(mut self, step: u64, node: NodeId) -> Self {
        self.faults.push((step, FaultKind::DropSocket, node));
        self
    }

    /// Nodes scheduled to *die* before `step`, in schedule order.
    /// Socket drops are not included — they are not expected to kill
    /// anyone (use [`FaultPlan::scheduled_at`] for the full schedule).
    pub fn victims_at(&self, step: u64) -> impl Iterator<Item = NodeId> + '_ {
        self.faults
            .iter()
            .filter(move |(s, k, _)| *s == step && *k == FaultKind::Kill)
            .map(|(_, _, n)| *n)
    }

    /// Every fault scheduled before `step`, in schedule order.
    pub fn scheduled_at(&self, step: u64) -> impl Iterator<Item = (FaultKind, NodeId)> + '_ {
        self.faults
            .iter()
            .filter(move |(s, _, _)| *s == step)
            .map(|(_, k, n)| (*k, *n))
    }

    /// Number of scripted faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` if the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Drives a [`FaultPlan`] against an engine, one step at a time.
///
/// ```
/// use albic_engine::fault::{FaultInjector, FaultPlan};
/// use albic_types::NodeId;
///
/// let plan = FaultPlan::new().kill(2, NodeId::new(1));
/// let mut injector = FaultInjector::new(plan);
/// assert_eq!(injector.step(), 0);
/// // each adaptation round: injector.advance(job.engine_mut()); job.step();
/// ```
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    step: u64,
}

impl FaultInjector {
    /// An injector at step 0 of `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan, step: 0 }
    }

    /// The next step [`FaultInjector::advance`] will apply.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Apply every fault scripted for the current step to `engine`, then
    /// move to the next step. Returns the nodes actually *killed* (a node
    /// that is unknown or already dead is skipped; socket drops are
    /// applied but never reported here — they are not deaths).
    pub fn advance<E: ReconfigEngine + ?Sized>(&mut self, engine: &mut E) -> Vec<NodeId> {
        let scheduled: Vec<(FaultKind, NodeId)> = self.plan.scheduled_at(self.step).collect();
        self.step += 1;
        scheduled
            .into_iter()
            .filter(|&(kind, node)| match kind {
                FaultKind::Kill => engine.inject_fault(node),
                FaultKind::DropSocket => {
                    let _ = engine.drop_socket(node);
                    false
                }
            })
            .map(|(_, node)| node)
            .collect()
    }
}

/// Deterministic re-homing of lost key groups onto the surviving nodes:
/// groups (ascending id) round-robin over survivors (ascending id).
///
/// Returns an empty placement when there are no survivors — the caller
/// decides what a total cluster loss means.
pub fn recovery_placement(lost: &[KeyGroupId], survivors: &[NodeId]) -> Vec<(KeyGroupId, NodeId)> {
    if survivors.is_empty() {
        return Vec::new();
    }
    let mut lost = lost.to_vec();
    lost.sort_unstable();
    let mut survivors = survivors.to_vec();
    survivors.sort_unstable();
    lost.iter()
        .enumerate()
        .map(|(i, &g)| (g, survivors[i % survivors.len()]))
        .collect()
}

/// Why a controlled drain
/// ([`crate::runtime::Runtime::try_terminate_drained`]) could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminateError {
    /// A worker thread is dead outside the controlled drain lifecycle
    /// (fault-injected crash or panic). Draining quiesces *all* workers,
    /// which a corpse can never acknowledge — run
    /// [`ReconfigEngine::recover`] first.
    WorkerCrashed(NodeId),
}

impl std::fmt::Display for TerminateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TerminateError::WorkerCrashed(node) => write!(
                f,
                "worker {node:?} is dead outside the drain lifecycle; recover() before draining"
            ),
        }
    }
}

impl std::error::Error for TerminateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_yields_victims_per_step() {
        let plan = FaultPlan::new()
            .kill(1, NodeId::new(3))
            .kill(1, NodeId::new(4))
            .drop_socket(1, NodeId::new(2))
            .kill(5, NodeId::new(0));
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        // victims_at reports kills only: a socket drop is not a death.
        assert_eq!(
            plan.victims_at(1).collect::<Vec<_>>(),
            vec![NodeId::new(3), NodeId::new(4)]
        );
        assert_eq!(
            plan.scheduled_at(1).collect::<Vec<_>>(),
            vec![
                (FaultKind::Kill, NodeId::new(3)),
                (FaultKind::Kill, NodeId::new(4)),
                (FaultKind::DropSocket, NodeId::new(2)),
            ]
        );
        assert_eq!(plan.victims_at(0).count(), 0);
        assert_eq!(plan.victims_at(5).collect::<Vec<_>>(), vec![NodeId::new(0)]);
    }

    #[test]
    fn placement_is_deterministic_round_robin_over_sorted_survivors() {
        let lost = vec![KeyGroupId::new(7), KeyGroupId::new(2), KeyGroupId::new(4)];
        let survivors = vec![NodeId::new(9), NodeId::new(3)];
        let placed = recovery_placement(&lost, &survivors);
        assert_eq!(
            placed,
            vec![
                (KeyGroupId::new(2), NodeId::new(3)),
                (KeyGroupId::new(4), NodeId::new(9)),
                (KeyGroupId::new(7), NodeId::new(3)),
            ]
        );
        // Input order never matters.
        let shuffled = recovery_placement(
            &[KeyGroupId::new(4), KeyGroupId::new(7), KeyGroupId::new(2)],
            &[NodeId::new(3), NodeId::new(9)],
        );
        assert_eq!(placed, shuffled);
    }

    #[test]
    fn placement_without_survivors_is_empty() {
        assert!(recovery_placement(&[KeyGroupId::new(0)], &[]).is_empty());
    }

    #[test]
    fn empty_report_means_no_fault() {
        let report = RecoveryReport::default();
        assert!(!report.recovered());
        assert_eq!(report.checkpoint_period, None);
    }
}
