//! The policy interface between the engine and the reconfiguration
//! algorithms.
//!
//! The adaptation framework, MILP balancer, ALBIC and all baselines live in
//! `albic-core` and implement [`ReconfigPolicy`]; the engine invokes the
//! policy once per statistics period and executes the returned plan.

use albic_types::NodeId;

use crate::cluster::Cluster;
use crate::cost::CostModel;
use crate::migration::Migration;
use crate::stats::PeriodStats;

/// Read-only view of the cluster handed to policies.
#[derive(Debug, Clone, Copy)]
pub struct ClusterView<'a> {
    /// The cluster.
    pub cluster: &'a Cluster,
    /// The engine's cost model (policies need `α` for migration costs).
    pub cost: &'a CostModel,
}

/// What a policy wants done at the end of a period.
#[derive(Debug, Clone, Default)]
#[must_use = "a plan does nothing until an engine applies it"]
pub struct ReconfigPlan {
    /// Key-group moves to execute.
    pub migrations: Vec<Migration>,
    /// Capacities of new nodes to acquire (horizontal scale-out).
    pub add_nodes: Vec<f64>,
    /// Nodes to mark for removal (horizontal scale-in); they are
    /// terminated by the framework once drained.
    pub mark_removal: Vec<NodeId>,
}

impl ReconfigPlan {
    /// A plan that changes nothing.
    pub fn noop() -> Self {
        Self::default()
    }

    /// `true` if the plan performs no action.
    pub fn is_noop(&self) -> bool {
        self.migrations.is_empty() && self.add_nodes.is_empty() && self.mark_removal.is_empty()
    }
}

/// A reconfiguration policy: consumes statistics, produces a plan.
pub trait ReconfigPolicy {
    /// Short identifier used in experiment output (e.g. `"milp"`, `"flux"`).
    fn name(&self) -> &str;

    /// Decide the actions for the period just finished.
    fn plan(&mut self, stats: &PeriodStats, view: ClusterView<'_>) -> ReconfigPlan;
}

/// The trivial policy: never reconfigure. Useful as an experimental
/// control and in tests.
#[derive(Debug, Default, Clone)]
pub struct NoopPolicy;

impl ReconfigPolicy for NoopPolicy {
    fn name(&self) -> &str {
        "noop"
    }
    fn plan(&mut self, _stats: &PeriodStats, _view: ClusterView<'_>) -> ReconfigPlan {
        ReconfigPlan::noop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_is_noop() {
        assert!(ReconfigPlan::noop().is_noop());
        let plan = ReconfigPlan {
            migrations: vec![],
            add_nodes: vec![1.0],
            mark_removal: vec![],
        };
        assert!(!plan.is_noop());
    }
}
