//! The operator abstraction.
//!
//! Operator semantics are opaque to the system (§4.3.2): the engine only
//! knows that each operator partitions its input by key into key groups,
//! each with independent state `σ_k` that can be serialized for migration.
//! User logic implements [`Operator`]; the engine owns scheduling, routing,
//! statistics and state movement.

use std::any::Any;

use crate::chunk::{ChunkEmissions, ChunkSlice};
use crate::tuple::Tuple;

/// Opaque per-key-group state. Each operator downcasts to its concrete
/// state type.
pub type StateBox = Box<dyn Any + Send>;

/// Collects the tuples an operator emits while processing.
#[derive(Debug, Default)]
pub struct Emissions {
    tuples: Vec<Tuple>,
}

impl Emissions {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit one tuple to all downstream operators.
    pub fn emit(&mut self, tuple: Tuple) {
        self.tuples.push(tuple);
    }

    /// Number of buffered tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Drain the buffered tuples.
    pub fn drain(&mut self) -> Vec<Tuple> {
        std::mem::take(&mut self.tuples)
    }

    /// Rebuild an emissions buffer around a recycled allocation — the
    /// runtime's hot path reuses drained buffers instead of allocating a
    /// fresh `Vec` per processed tuple.
    pub fn from_buffer(mut tuples: Vec<Tuple>) -> Self {
        tuples.clear();
        Emissions { tuples }
    }
}

/// User-defined operator logic.
///
/// One instance of this trait is shared (via `Arc`) by every node that
/// hosts key groups of the operator; all per-key mutable data lives in the
/// state boxes, never in `self`.
pub trait Operator: Send + Sync {
    /// Human-readable operator name (diagnostics only).
    fn name(&self) -> &str;

    /// Fresh (empty) state for one key group.
    fn new_state(&self) -> StateBox;

    /// Serialize a key group's state for migration. The engine treats the
    /// bytes as opaque; `|σ_k|` (their length) feeds the migration cost
    /// model.
    fn serialize_state(&self, state: &StateBox) -> Vec<u8>;

    /// Rebuild state from [`Operator::serialize_state`] bytes.
    fn deserialize_state(&self, bytes: &[u8]) -> StateBox;

    /// Approximate in-memory size of a state box, for the memory-load
    /// model. Default: length of the serialized form.
    fn state_size(&self, state: &StateBox) -> usize {
        self.serialize_state(state).len()
    }

    /// Process one input tuple against the state of its key group.
    fn process(&self, tuple: &Tuple, state: &mut StateBox, out: &mut Emissions);

    /// Process a whole run of same-key-group rows in one call — the
    /// columnar data plane's entry point (`DataPlane::Columnar`), paying
    /// one virtual dispatch per batch instead of per tuple.
    ///
    /// The default bridges to [`Operator::process`] row by row, so every
    /// operator is columnar-capable unchanged; vectorizable operators
    /// override it to work on the columns directly (see
    /// [`Identity`]/[`Counting`]). Overrides must emit exactly what the
    /// row path would: the differential suite pins the two planes to
    /// bit-identical results.
    fn process_chunk(&self, rows: &ChunkSlice<'_>, state: &mut StateBox, out: &mut ChunkEmissions) {
        let mut tmp = Emissions::new();
        for i in 0..rows.len() {
            if !rows.is_visible(i) {
                continue;
            }
            let tuple = rows.tuple_at(i);
            self.process(&tuple, state, &mut tmp);
        }
        for t in tmp.drain() {
            out.emit(t);
        }
    }

    /// Called at the end of every statistics period — operators with
    /// windows flush aggregates here.
    fn on_period_end(&self, _state: &mut StateBox, _out: &mut Emissions) {}

    /// Whether [`Operator::on_period_end`] mutates the state it is given.
    /// Operators whose period flush clears or rewrites state (window
    /// operators) must return `true`, or incremental checkpoints would
    /// miss the flush-time change; the default (`false`) matches a pure
    /// emit-only or no-op flush and keeps untouched groups eligible to go
    /// cold on the spill tier.
    fn period_end_mutates(&self) -> bool {
        false
    }

    /// Relative CPU cost of processing one tuple (1.0 = baseline). Feeds
    /// the load model so heavy operators produce hotter key groups.
    fn cost_per_tuple(&self) -> f64 {
        1.0
    }
}

/// A pass-through operator, useful as a source placeholder and in tests.
#[derive(Debug, Default)]
pub struct Identity;

impl Operator for Identity {
    fn name(&self) -> &str {
        "identity"
    }
    fn new_state(&self) -> StateBox {
        Box::new(())
    }
    fn serialize_state(&self, _state: &StateBox) -> Vec<u8> {
        Vec::new()
    }
    fn deserialize_state(&self, _bytes: &[u8]) -> StateBox {
        Box::new(())
    }
    fn process(&self, tuple: &Tuple, _state: &mut StateBox, out: &mut Emissions) {
        out.emit(tuple.clone());
    }
    fn process_chunk(
        &self,
        rows: &ChunkSlice<'_>,
        _state: &mut StateBox,
        out: &mut ChunkEmissions,
    ) {
        // Pass-through is a flat column splice: no per-row work at all.
        out.emit_slice(rows);
    }
}

/// A stateful counter operator used in tests: counts tuples per key group
/// and emits the running count.
#[derive(Debug, Default)]
pub struct Counting;

impl Operator for Counting {
    fn name(&self) -> &str {
        "counting"
    }
    fn new_state(&self) -> StateBox {
        Box::new(0u64)
    }
    fn serialize_state(&self, state: &StateBox) -> Vec<u8> {
        let count = state.downcast_ref::<u64>().expect("counting state");
        count.to_le_bytes().to_vec()
    }
    fn deserialize_state(&self, bytes: &[u8]) -> StateBox {
        let mut arr = [0u8; 8];
        arr.copy_from_slice(&bytes[..8]);
        Box::new(u64::from_le_bytes(arr))
    }
    fn process(&self, tuple: &Tuple, state: &mut StateBox, out: &mut Emissions) {
        let count = state.downcast_mut::<u64>().expect("counting state");
        *count += 1;
        out.emit(Tuple::raw(
            tuple.key,
            crate::tuple::Value::Int(*count as i64),
            tuple.ts,
        ));
    }
    fn process_chunk(&self, rows: &ChunkSlice<'_>, state: &mut StateBox, out: &mut ChunkEmissions) {
        // One downcast per run, counts emitted straight into the column.
        let count = state.downcast_mut::<u64>().expect("counting state");
        for i in 0..rows.len() {
            if !rows.is_visible(i) {
                continue;
            }
            *count += 1;
            out.emit_raw(
                rows.key_at(i),
                crate::tuple::Value::Int(*count as i64),
                rows.ts_at(i),
            );
        }
    }
}

/// [`Counting`] with a deliberately fat, highly compressible serialized
/// form: the 8-byte LE count followed by 16 KiB of constant padding.
/// Exists to exercise wire-level state compression end-to-end (the
/// networked transport's LZ4 path has something real to shrink); the
/// count still lives in the first 8 bytes, so state probes read it the
/// same way they read [`Counting`]'s.
#[derive(Debug, Default)]
pub struct PaddedCounting;

/// Padding bytes [`PaddedCounting`] appends to its serialized state.
pub const PADDED_STATE_PAD: usize = 16 * 1024;

impl Operator for PaddedCounting {
    fn name(&self) -> &str {
        "padded-counting"
    }
    fn new_state(&self) -> StateBox {
        Box::new(0u64)
    }
    fn serialize_state(&self, state: &StateBox) -> Vec<u8> {
        let count = *state.downcast_ref::<u64>().expect("padded-counting state");
        let mut bytes = count.to_le_bytes().to_vec();
        bytes.resize(8 + PADDED_STATE_PAD, (count % 251) as u8);
        bytes
    }
    fn deserialize_state(&self, bytes: &[u8]) -> StateBox {
        let mut arr = [0u8; 8];
        arr.copy_from_slice(&bytes[..8]);
        Box::new(u64::from_le_bytes(arr))
    }
    fn process(&self, tuple: &Tuple, state: &mut StateBox, out: &mut Emissions) {
        let count = state.downcast_mut::<u64>().expect("padded-counting state");
        *count += 1;
        out.emit(Tuple::raw(
            tuple.key,
            crate::tuple::Value::Int(*count as i64),
            tuple.ts,
        ));
    }
    fn process_chunk(&self, rows: &ChunkSlice<'_>, state: &mut StateBox, out: &mut ChunkEmissions) {
        let count = state.downcast_mut::<u64>().expect("padded-counting state");
        for i in 0..rows.len() {
            if !rows.is_visible(i) {
                continue;
            }
            *count += 1;
            out.emit_raw(
                rows.key_at(i),
                crate::tuple::Value::Int(*count as i64),
                rows.ts_at(i),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    #[test]
    fn emissions_collect_and_drain() {
        let mut e = Emissions::new();
        assert!(e.is_empty());
        e.emit(Tuple::raw(1, Value::Null, 0));
        e.emit(Tuple::raw(2, Value::Null, 0));
        assert_eq!(e.len(), 2);
        let drained = e.drain();
        assert_eq!(drained.len(), 2);
        assert!(e.is_empty());
    }

    #[test]
    fn identity_passes_through() {
        let op = Identity;
        let mut state = op.new_state();
        let mut out = Emissions::new();
        let t = Tuple::raw(7, Value::Int(3), 1);
        op.process(&t, &mut state, &mut out);
        assert_eq!(out.drain(), vec![t]);
        assert_eq!(op.state_size(&state), 0);
    }

    #[test]
    fn counting_state_roundtrips_through_serialization() {
        let op = Counting;
        let mut state = op.new_state();
        let mut out = Emissions::new();
        for i in 0..5 {
            op.process(&Tuple::raw(9, Value::Null, i), &mut state, &mut out);
        }
        let counts: Vec<i64> = out
            .drain()
            .iter()
            .map(|t| t.value.as_int().unwrap())
            .collect();
        assert_eq!(counts, vec![1, 2, 3, 4, 5]);

        // Migrate: serialize, rebuild, continue counting.
        let bytes = op.serialize_state(&state);
        let mut moved = op.deserialize_state(&bytes);
        let mut out = Emissions::new();
        op.process(&Tuple::raw(9, Value::Null, 9), &mut moved, &mut out);
        assert_eq!(out.drain()[0].value.as_int(), Some(6));
    }

    #[test]
    fn default_cost_is_baseline() {
        assert_eq!(Identity.cost_per_tuple(), 1.0);
    }

    #[test]
    fn chunk_overrides_match_the_row_path() {
        use crate::chunk::StreamChunk;
        let tuples: Vec<Tuple> = (0..10)
            .map(|i| Tuple::raw(i % 3, Value::Int(i as i64), i))
            .collect();
        let chunk = StreamChunk::from_tuples(tuples.clone());
        for op in [&Identity as &dyn Operator, &Counting as &dyn Operator] {
            // Row path.
            let mut row_state = op.new_state();
            let mut row_out = Emissions::new();
            for t in &tuples {
                op.process(t, &mut row_state, &mut row_out);
            }
            // Chunk path (the override), then the default bridge.
            let mut chunk_state = op.new_state();
            let mut chunk_out = ChunkEmissions::new();
            op.process_chunk(&ChunkSlice::whole(&chunk), &mut chunk_state, &mut chunk_out);
            assert_eq!(chunk_out.into_chunk().to_tuples(), row_out.drain());
            assert_eq!(
                op.serialize_state(&chunk_state),
                op.serialize_state(&row_state)
            );
        }
    }

    #[test]
    fn default_process_chunk_bridges_and_skips_hidden_rows() {
        use crate::chunk::StreamChunk;
        // An operator with no override exercises the default bridge.
        struct Doubling;
        impl Operator for Doubling {
            fn name(&self) -> &str {
                "doubling"
            }
            fn new_state(&self) -> StateBox {
                Box::new(())
            }
            fn serialize_state(&self, _state: &StateBox) -> Vec<u8> {
                Vec::new()
            }
            fn deserialize_state(&self, _bytes: &[u8]) -> StateBox {
                Box::new(())
            }
            fn process(&self, tuple: &Tuple, _state: &mut StateBox, out: &mut Emissions) {
                let v = tuple.value.as_int().unwrap_or(0);
                out.emit(Tuple::raw(tuple.key, Value::Int(2 * v), tuple.ts));
            }
        }
        let mut chunk =
            StreamChunk::from_tuples((0..4).map(|i| Tuple::raw(i, Value::Int(i as i64), i)));
        chunk.hide(1);
        let mut state = Doubling.new_state();
        let mut out = ChunkEmissions::new();
        Doubling.process_chunk(&ChunkSlice::whole(&chunk), &mut state, &mut out);
        let emitted: Vec<i64> = out
            .into_chunk()
            .to_tuples()
            .iter()
            .map(|t| t.value.as_int().unwrap())
            .collect();
        assert_eq!(emitted, vec![0, 4, 6]);
    }
}
