//! Incremental, log-structured checkpoint storage with a spill tier for
//! cold key groups.
//!
//! PR 5's checkpoint was a monolithic all-state snapshot: O(total state)
//! capture cost at every checkpoint boundary, and the whole image pinned
//! in coordinator memory. This module replaces it with the log-structured
//! shape RisingWave's hummock shared-buffer/uploader uses: a **base
//! image** per key group plus a bounded stack of **delta layers**, where
//! each capture appends one layer holding only the groups that changed
//! since the previous capture (state serialization is whole-group, so a
//! "delta" is the newest serialized image of each dirty group and
//! newest-wins merging is exact, not approximate). When the stack exceeds
//! [`DEFAULT_MAX_DELTA_LAYERS`] it is folded into the base at the (already
//! quiesced) period boundary — capture cost per period is O(changed
//! state), compaction cost is amortized, and restore is still a single
//! `base + deltas` merge through the existing rollback/install path.
//!
//! The **spill tier** lets total state exceed coordinator memory: a key
//! group that has not been dirty for [`SpillConfig::cold_after`] periods
//! has its base image written to a file under [`SpillConfig::dir`] and
//! the in-memory bytes dropped. The store owns these files exclusively —
//! workers *read* them to fault cold state back in on access, but only
//! the store ever writes or deletes them (always at a quiesced capture
//! boundary), so a file on disk is always the group's newest *captured*
//! image. A recovery rollback ships only the hot (in-memory) images
//! eagerly and hands workers the spilled-group list instead, which is
//! what makes recovery time sublinear in total state.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How [`crate::runtime::Runtime`] captures checkpoints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CheckpointMode {
    /// Every capture snapshots every key group's state (the PR 5
    /// behavior): simplest, O(total state) per checkpoint, and the
    /// differential oracle for [`CheckpointMode::Incremental`].
    #[default]
    Full,
    /// Captures snapshot only the key groups that changed since the last
    /// capture, appended as delta layers over a base image and compacted
    /// at period boundaries — O(changed state) per checkpoint, and the
    /// prerequisite for the cold-state spill tier.
    Incremental,
}

/// Spill-tier configuration: where cold key-group images go, and how many
/// periods without a write make a group cold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillConfig {
    /// Directory for spilled group images (created if missing). One file
    /// per cold group, owned exclusively by the checkpoint store.
    pub dir: PathBuf,
    /// A group is spilled once it has not been dirty in any capture for
    /// this many periods. Must be at least 1.
    pub cold_after: u64,
}

/// How many delta layers may stack up before a capture folds them into
/// the base image (the period-boundary compaction schedule).
pub const DEFAULT_MAX_DELTA_LAYERS: usize = 4;

/// What one [`CheckpointStore::ingest`] did, for period accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureOutcome {
    /// Key groups captured in this ingest.
    pub captured_groups: usize,
    /// Serialized bytes captured in this ingest (the O(delta) cost).
    pub captured_bytes: u64,
    /// Whether this ingest folded the delta stack into the base.
    pub compacted: bool,
}

/// A key group's base image: resident bytes, or a spill-file reference.
#[derive(Debug, Clone)]
enum GroupImage {
    Mem(Vec<u8>),
    Spilled { len: u64 },
}

/// One capture's worth of changed groups (newest serialized images).
#[derive(Debug, Default)]
struct DeltaLayer {
    entries: BTreeMap<u32, Vec<u8>>,
}

/// The log-structured checkpoint store: per-group base images plus a
/// bounded stack of delta layers, with an optional spill tier for cold
/// groups. Restore order is newest-layer-wins over the base.
#[derive(Debug)]
pub struct CheckpointStore {
    mode: CheckpointMode,
    base: BTreeMap<u32, GroupImage>,
    layers: VecDeque<DeltaLayer>,
    max_layers: usize,
    /// Period of the newest completed capture.
    period: Option<u64>,
    /// Period of the last capture in which each group appeared dirty.
    last_dirty: BTreeMap<u32, u64>,
    /// Groups whose base image currently lives on disk.
    spilled: BTreeSet<u32>,
    spill: Option<SpillConfig>,
    /// Set when a capture was abandoned mid-gather (a worker died after
    /// some peers had already drained their dirty sets): the next capture
    /// must be full, or the drained-but-uncommitted changes would be lost.
    force_full: bool,
}

/// The spill file holding group `g`'s newest captured image.
pub fn spill_file(dir: &Path, g: u32) -> PathBuf {
    dir.join(format!("group-{g:08}.state"))
}

impl CheckpointStore {
    /// An empty store. With `spill` set, the directory is created eagerly
    /// so capture-time writes cannot fail on a missing parent.
    pub fn new(mode: CheckpointMode, max_layers: usize, spill: Option<SpillConfig>) -> Self {
        if let Some(cfg) = &spill {
            let _ = fs::create_dir_all(&cfg.dir);
        }
        CheckpointStore {
            mode,
            base: BTreeMap::new(),
            layers: VecDeque::new(),
            max_layers: max_layers.max(1),
            period: None,
            last_dirty: BTreeMap::new(),
            spilled: BTreeSet::new(),
            spill,
            force_full: false,
        }
    }

    /// The configured capture mode.
    pub fn mode(&self) -> CheckpointMode {
        self.mode
    }

    /// The period of the newest completed capture, if any.
    pub fn period(&self) -> Option<u64> {
        self.period
    }

    /// `true` if no capture has completed yet.
    pub fn is_empty(&self) -> bool {
        self.period.is_none()
    }

    /// Whether the next capture must snapshot *all* state: always in
    /// [`CheckpointMode::Full`], and in incremental mode for the first
    /// capture and after an abandoned one.
    pub fn wants_full(&self) -> bool {
        self.mode == CheckpointMode::Full || self.force_full || self.period.is_none()
    }

    /// A capture was abandoned after the fan-out (a worker died before
    /// replying): peers that did reply have already drained their dirty
    /// sets, so the next capture is forced full.
    pub fn abandon(&mut self) {
        self.force_full = true;
    }

    /// Commit one capture. `full` must match what [`Self::wants_full`]
    /// said when the snapshot was requested: a full capture replaces the
    /// base wholesale, a delta capture appends one layer of changed
    /// groups (compacting when the stack exceeds its bound) — then the
    /// spill pass writes out any group that has gone cold.
    pub fn ingest(
        &mut self,
        period: u64,
        states: Vec<(u32, Vec<u8>)>,
        full: bool,
    ) -> CaptureOutcome {
        let mut out = CaptureOutcome {
            captured_groups: states.len(),
            captured_bytes: states.iter().map(|(_, b)| b.len() as u64).sum(),
            compacted: false,
        };
        if full {
            self.layers.clear();
            let mut new_base: BTreeMap<u32, GroupImage> = states
                .into_iter()
                .map(|(g, b)| (g, GroupImage::Mem(b)))
                .collect();
            // Groups already on the spill tier stay there: a spilled
            // group is by definition clean, so its file is still its
            // newest image — and workers hold lazily-faulting marks
            // against those files, which deleting here would invalidate
            // while no worker has a resident copy.
            let mut still_spilled = BTreeSet::new();
            for &g in &self.spilled {
                match new_base.get_mut(&g) {
                    Some(img) => {
                        // The capture's bytes are the newest image (the
                        // group may have been faulted in and redirtied
                        // since it spilled), so the file is refreshed
                        // before the bytes are dropped from memory. A
                        // failed write keeps the group resident instead.
                        let GroupImage::Mem(bytes) = img else {
                            continue;
                        };
                        if let Some(cfg) = &self.spill {
                            if fs::write(spill_file(&cfg.dir, g), &*bytes).is_ok() {
                                let len = bytes.len() as u64;
                                *img = GroupImage::Spilled { len };
                                still_spilled.insert(g);
                            }
                        }
                    }
                    // Absent from the capture (its worker could not read
                    // the file back): the old spilled entry, whose file
                    // is untouched, carries over.
                    None => {
                        if let Some(old) = self.base.remove(&g) {
                            new_base.insert(g, old);
                            still_spilled.insert(g);
                        }
                    }
                }
            }
            self.spilled = still_spilled;
            self.base = new_base;
            self.last_dirty = self.base.keys().map(|&g| (g, period)).collect();
            self.force_full = false;
        } else {
            let mut layer = DeltaLayer::default();
            for (g, bytes) in states {
                // A dirty group is no longer cold: its file (if any) is
                // stale as of this capture and must not outlive it.
                if self.spilled.remove(&g) {
                    if let Some(cfg) = &self.spill {
                        let _ = fs::remove_file(spill_file(&cfg.dir, g));
                    }
                    self.base.remove(&g);
                }
                self.last_dirty.insert(g, period);
                layer.entries.insert(g, bytes);
            }
            self.layers.push_back(layer);
            if self.layers.len() >= self.max_layers {
                self.compact();
                out.compacted = true;
            }
        }
        self.period = Some(period);
        self.spill_cold(period);
        out
    }

    /// Fold every delta layer into the base, newest layer winning per
    /// group. Runs at a period boundary (the store is coordinator-local,
    /// so "background" here means amortized off the capture hot path).
    fn compact(&mut self) {
        for layer in self.layers.drain(..) {
            for (g, bytes) in layer.entries {
                self.base.insert(g, GroupImage::Mem(bytes));
            }
        }
    }

    /// Write out the base image of every group that has gone cold. Only
    /// base-resident groups spill: a group whose newest image still sits
    /// in a delta layer stays in memory until compaction folds it down.
    /// A failed write keeps the group resident (never lossy).
    fn spill_cold(&mut self, period: u64) {
        let Some(cfg) = self.spill.clone() else {
            return;
        };
        let in_layers: BTreeSet<u32> = self
            .layers
            .iter()
            .flat_map(|l| l.entries.keys().copied())
            .collect();
        let cold: Vec<u32> = self
            .base
            .iter()
            .filter(|(g, img)| matches!(img, GroupImage::Mem(_)) && !in_layers.contains(g))
            .map(|(&g, _)| g)
            .filter(|g| {
                period.saturating_sub(self.last_dirty.get(g).copied().unwrap_or(0))
                    >= cfg.cold_after
            })
            .collect();
        for g in cold {
            let Some(GroupImage::Mem(bytes)) = self.base.get(&g) else {
                continue;
            };
            if fs::write(spill_file(&cfg.dir, g), bytes).is_ok() {
                let len = bytes.len() as u64;
                self.base.insert(g, GroupImage::Spilled { len });
                self.spilled.insert(g);
            }
        }
    }

    /// The hot restore set: newest-wins merge of resident base images and
    /// every delta layer, sorted by group id. Spilled groups are *not*
    /// included — recovery leaves them on disk to be faulted in on
    /// access, which is what keeps restore cost sublinear in total state.
    pub fn hot_states(&self) -> Vec<(u32, Vec<u8>)> {
        let mut merged: BTreeMap<u32, &Vec<u8>> = BTreeMap::new();
        for (&g, img) in &self.base {
            if let GroupImage::Mem(bytes) = img {
                merged.insert(g, bytes);
            }
        }
        for layer in &self.layers {
            for (&g, bytes) in &layer.entries {
                merged.insert(g, bytes);
            }
        }
        merged.into_iter().map(|(g, b)| (g, b.clone())).collect()
    }

    /// Every group currently on the spill tier, sorted.
    pub fn spilled_ids(&self) -> Vec<u32> {
        self.spilled.iter().copied().collect()
    }

    /// Number of groups currently on the spill tier.
    pub fn spilled_count(&self) -> usize {
        self.spilled.len()
    }

    /// The spill directory, if the tier is configured.
    pub fn spill_dir(&self) -> Option<&Path> {
        self.spill.as_ref().map(|c| c.dir.as_path())
    }

    /// Un-compacted bytes across all delta layers.
    pub fn delta_bytes(&self) -> u64 {
        self.layers
            .iter()
            .flat_map(|l| l.entries.values())
            .map(|b| b.len() as u64)
            .sum()
    }

    /// Total bytes of the state the checkpoint represents: the
    /// newest-wins image of every group (resident or spilled), each
    /// counted once even while older copies await compaction.
    pub fn total_bytes(&self) -> u64 {
        let mut newest: BTreeMap<u32, u64> = self
            .base
            .iter()
            .map(|(&g, img)| match img {
                GroupImage::Mem(b) => (g, b.len() as u64),
                GroupImage::Spilled { len } => (g, *len),
            })
            .collect();
        for layer in &self.layers {
            for (&g, bytes) in &layer.entries {
                newest.insert(g, bytes.len() as u64);
            }
        }
        newest.values().sum()
    }

    /// The complete restore image — hot states plus spilled files read
    /// back in — sorted by group id. The full-snapshot oracle for the
    /// incremental path (tests), and the bulk export for tooling; the
    /// recovery hot path uses [`Self::hot_states`] instead.
    pub fn full_states(&self) -> io::Result<Vec<(u32, Vec<u8>)>> {
        let mut all = self.hot_states();
        if let Some(cfg) = &self.spill {
            for &g in &self.spilled {
                all.push((g, fs::read(spill_file(&cfg.dir, g))?));
            }
        }
        all.sort_unstable_by_key(|(g, _)| *g);
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "albic-checkpoint-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn bytes(seed: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| seed.wrapping_add(i as u8)).collect()
    }

    #[test]
    fn delta_layers_merge_newest_wins_over_base() {
        let mut s = CheckpointStore::new(CheckpointMode::Incremental, 8, None);
        assert!(s.wants_full());
        s.ingest(0, vec![(1, bytes(1, 4)), (2, bytes(2, 4))], true);
        assert!(!s.wants_full());
        s.ingest(1, vec![(2, bytes(20, 4))], false);
        s.ingest(2, vec![(2, bytes(21, 4)), (3, bytes(3, 4))], false);
        let all = s.full_states().unwrap();
        assert_eq!(
            all,
            vec![(1, bytes(1, 4)), (2, bytes(21, 4)), (3, bytes(3, 4)),]
        );
        assert_eq!(s.delta_bytes(), 12);
        assert_eq!(s.period(), Some(2));
    }

    #[test]
    fn compaction_folds_layers_into_base_and_preserves_the_image() {
        let mut s = CheckpointStore::new(CheckpointMode::Incremental, 2, None);
        s.ingest(0, vec![(1, bytes(1, 4))], true);
        s.ingest(1, vec![(1, bytes(10, 4))], false);
        let out = s.ingest(2, vec![(2, bytes(2, 4))], false);
        assert!(out.compacted, "second layer must trigger compaction");
        assert_eq!(s.delta_bytes(), 0);
        assert_eq!(
            s.full_states().unwrap(),
            vec![(1, bytes(10, 4)), (2, bytes(2, 4))]
        );
    }

    #[test]
    fn abandoned_capture_forces_the_next_one_full() {
        let mut s = CheckpointStore::new(CheckpointMode::Incremental, 8, None);
        s.ingest(0, vec![(1, bytes(1, 4))], true);
        assert!(!s.wants_full());
        s.abandon();
        assert!(s.wants_full());
        s.ingest(1, vec![(2, bytes(2, 4))], true);
        assert!(!s.wants_full());
        // The full capture replaced the base: group 1 is gone.
        assert_eq!(s.full_states().unwrap(), vec![(2, bytes(2, 4))]);
    }

    #[test]
    fn cold_groups_spill_to_disk_and_fault_back_into_the_full_image() {
        let dir = tmp_dir();
        let mut s = CheckpointStore::new(
            CheckpointMode::Incremental,
            8,
            Some(SpillConfig {
                dir: dir.clone(),
                cold_after: 2,
            }),
        );
        s.ingest(0, vec![(1, bytes(1, 64)), (2, bytes(2, 64))], true);
        assert_eq!(s.spilled_count(), 0);
        // Group 2 stays dirty; group 1 goes cold after 2 quiet periods.
        s.ingest(1, vec![(2, bytes(20, 64))], false);
        s.ingest(2, vec![(2, bytes(21, 64))], false);
        assert_eq!(s.spilled_ids(), vec![1]);
        assert!(spill_file(&dir, 1).exists());
        // Hot restore excludes the spilled group; the full image does not.
        assert!(s.hot_states().iter().all(|(g, _)| *g != 1));
        assert_eq!(
            s.full_states().unwrap(),
            vec![(1, bytes(1, 64)), (2, bytes(21, 64))]
        );
        assert_eq!(
            s.total_bytes(),
            s.full_states()
                .unwrap()
                .iter()
                .map(|(_, b)| b.len() as u64)
                .sum::<u64>()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_redirtied_group_unspills_and_its_stale_file_is_removed() {
        let dir = tmp_dir();
        let mut s = CheckpointStore::new(
            CheckpointMode::Incremental,
            8,
            Some(SpillConfig {
                dir: dir.clone(),
                cold_after: 1,
            }),
        );
        s.ingest(0, vec![(1, bytes(1, 16))], true);
        s.ingest(1, vec![], false);
        assert_eq!(s.spilled_ids(), vec![1]);
        s.ingest(2, vec![(1, bytes(9, 16))], false);
        assert_eq!(s.spilled_count(), 0);
        assert!(!spill_file(&dir, 1).exists(), "stale spill file survived");
        assert_eq!(s.full_states().unwrap(), vec![(1, bytes(9, 16))]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn random_capture_sequence_matches_a_hash_map_oracle() {
        // A miniature deterministic fuzz: interleaved full/delta captures
        // with compaction and spill must always reproduce the oracle map.
        let dir = tmp_dir();
        let mut s = CheckpointStore::new(
            CheckpointMode::Incremental,
            3,
            Some(SpillConfig {
                dir: dir.clone(),
                cold_after: 2,
            }),
        );
        let mut oracle: HashMap<u32, Vec<u8>> = HashMap::new();
        let mut seed = 7u64;
        for period in 0..40u64 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let full = s.wants_full();
            let groups: Vec<u32> = (0..8u32).filter(|g| full || (seed >> g) & 1 == 1).collect();
            let states: Vec<(u32, Vec<u8>)> = groups
                .iter()
                .map(|&g| (g, bytes((seed as u8).wrapping_add(g as u8), 8 + g as usize)))
                .collect();
            if full {
                oracle = states.iter().cloned().collect();
            } else {
                for (g, b) in &states {
                    oracle.insert(*g, b.clone());
                }
            }
            s.ingest(period, states, full);
            if period % 11 == 10 {
                s.abandon();
            }
            let mut want: Vec<(u32, Vec<u8>)> =
                oracle.iter().map(|(g, b)| (*g, b.clone())).collect();
            want.sort_unstable_by_key(|(g, _)| *g);
            assert_eq!(s.full_states().unwrap(), want, "period {period}");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
