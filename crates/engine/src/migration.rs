//! Migration plan types and the direct state migration cost model.
//!
//! The protocol itself (§3, *State Migration*) has two implementations:
//! modeled in [`crate::sim`] and executed for real (redirect → buffer →
//! serialize → ship → rebuild → replay) in [`crate::runtime`]. This module
//! holds the shared vocabulary.

use albic_types::{KeyGroupId, NodeId};
use serde::{Deserialize, Serialize};

use crate::cost::CostModel;

/// One requested key-group move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Migration {
    /// The key group to move.
    pub group: KeyGroupId,
    /// Destination node.
    pub to: NodeId,
}

/// Outcome of one executed migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// The key group that moved.
    pub group: KeyGroupId,
    /// Origin node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Serialized state size `|σ_k|` in bytes.
    pub state_bytes: usize,
    /// Bytes the state occupied on the wire. Equal to `state_bytes`
    /// in-process or with compression off; smaller when the networked
    /// transport LZ4-compressed the blob.
    pub wire_bytes: usize,
    /// Migration cost `mc_k = α·|σ_k|`.
    pub cost: f64,
    /// Seconds the key group's processing was paused.
    pub pause_secs: f64,
}

impl MigrationReport {
    /// Build a report from the cost model.
    pub fn from_cost_model(
        group: KeyGroupId,
        from: NodeId,
        to: NodeId,
        state_bytes: usize,
        cost_model: &CostModel,
    ) -> Self {
        let cost = cost_model.migration_cost(state_bytes);
        MigrationReport {
            group,
            from,
            to,
            state_bytes,
            wire_bytes: state_bytes,
            cost,
            pause_secs: cost_model.migration_pause(cost),
        }
    }

    /// Record what the state actually cost on the wire (the networked
    /// transport's measurement; defaults to `state_bytes`).
    pub fn with_wire_bytes(mut self, wire_bytes: usize) -> Self {
        self.wire_bytes = wire_bytes;
        self
    }
}

/// Total modeled cost of a set of migrations given per-group state sizes.
pub fn plan_cost(
    migrations: &[Migration],
    state_bytes: &[f64],
    current: &[NodeId],
    cost_model: &CostModel,
) -> f64 {
    migrations
        .iter()
        .filter(|m| current[m.group.index()] != m.to)
        .map(|m| cost_model.migration_cost(state_bytes[m.group.index()] as usize))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_follows_cost_model() {
        let cm = CostModel {
            alpha: 0.01,
            pause_per_cost: 2.0,
            ..Default::default()
        };
        let r = MigrationReport::from_cost_model(
            KeyGroupId::new(3),
            NodeId::new(0),
            NodeId::new(1),
            500,
            &cm,
        );
        assert_eq!(r.cost, 5.0);
        assert_eq!(r.pause_secs, 10.0);
        assert_eq!(r.state_bytes, 500);
        // Wire bytes default to the raw size until a transport measures
        // the compressed payload.
        assert_eq!(r.wire_bytes, 500);
        assert_eq!(r.with_wire_bytes(123).wire_bytes, 123);
    }

    #[test]
    fn plan_cost_skips_no_op_moves() {
        let cm = CostModel {
            alpha: 1.0,
            ..Default::default()
        };
        let current = vec![NodeId::new(0), NodeId::new(1)];
        let migrations = vec![
            Migration {
                group: KeyGroupId::new(0),
                to: NodeId::new(1),
            }, // real move
            Migration {
                group: KeyGroupId::new(1),
                to: NodeId::new(1),
            }, // no-op
        ];
        let cost = plan_cost(&migrations, &[100.0, 100.0], &current, &cm);
        assert_eq!(cost, 100.0);
    }
}
