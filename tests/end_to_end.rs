//! Cross-crate integration tests: the full stack working together —
//! workload → engine (simulator and threaded runtime) → policy → plan →
//! migration → measurable improvement.

use albic::core::albic::{Albic, AlbicConfig};
use albic::core::allocator::{KeyGroupAllocator, NodeSet};
use albic::core::baselines::{Cola, Flux};
use albic::core::framework::AdaptationFramework;
use albic::core::{Controller, MilpBalancer, ThresholdScaling};
use albic::engine::reconfig::ReconfigPolicy;
use albic::engine::{Cluster, CostModel, ReconfigEngine, RoutingTable, SimEngine};
use albic::milp::MigrationBudget;
use albic::types::NodeId;
use albic::workloads::airline::AirlineJobWorkload;
use albic::workloads::wikipedia::WikiJob1Workload;
use albic::workloads::{SyntheticConfig, SyntheticWorkload};

fn drive<E: ReconfigEngine>(engine: &mut E, policy: &mut dyn ReconfigPolicy, periods: usize) {
    Controller::new(engine).run(policy, periods);
}

#[test]
fn milp_beats_flux_on_skewed_synthetic_load() {
    let mk = || {
        let cfg = SyntheticConfig {
            varies: 60.0,
            ..SyntheticConfig::cluster(20)
        };
        SimEngine::with_round_robin(
            SyntheticWorkload::new(cfg),
            Cluster::homogeneous(20),
            CostModel::default(),
        )
    };
    let mut milp_engine = mk();
    let mut milp =
        AdaptationFramework::balancing_only(MilpBalancer::new(MigrationBudget::Count(20)));
    drive(&mut milp_engine, &mut milp, 1);

    let mut flux_engine = mk();
    let mut flux = AdaptationFramework::balancing_only(Flux::new(20));
    drive(&mut flux_engine, &mut flux, 1);

    let milp_d = milp_engine.history().last().unwrap().load_distance;
    let flux_d = flux_engine.history().last().unwrap().load_distance;
    assert!(
        milp_d <= flux_d + 1e-6,
        "MILP ({milp_d:.2}) must not lose to Flux ({flux_d:.2})"
    );
    assert!(
        milp_d < 10.0,
        "MILP should reach a good balance, got {milp_d:.2}"
    );
}

#[test]
fn albic_converges_to_collocation_on_job2() {
    let groups_per_op = 30u32;
    let workers = 6usize;
    let workload = AirlineJobWorkload::job2(20_000.0, groups_per_op, 5);
    let downstream = workload.downstream_groups();
    let cluster = Cluster::homogeneous(workers);
    let ids: Vec<NodeId> = cluster.nodes().iter().map(|n| n.id).collect();
    // Worst-case start: every 1-1 pair split.
    let routing = RoutingTable::from_assignment(
        (0..groups_per_op * 2)
            .map(|g| {
                let op = g / groups_per_op;
                ids[((g % groups_per_op) + op) as usize % workers]
            })
            .collect(),
    );
    let mut engine = SimEngine::new(workload, cluster, routing, CostModel::default());
    let mut policy = AdaptationFramework::balancing_only(Albic::new(
        AlbicConfig {
            budget: MigrationBudget::Count(10),
            ..Default::default()
        },
        downstream,
    ));
    drive(&mut engine, &mut policy, 40);

    let first = engine.history()[0].collocation_factor;
    let last = engine.history().last().unwrap().collocation_factor;
    assert!(
        last > first + 30.0,
        "collocation must improve substantially: {first:.1}% → {last:.1}%"
    );
    // Load index falls as cross-node traffic disappears.
    let idx = albic::core::metrics::load_index_series(engine.history(), 2);
    assert!(
        idx.last().unwrap() < &85.0,
        "load index must drop, got {:.1}",
        idx.last().unwrap()
    );
    // ALBIC stays within its migration budget every period.
    assert!(engine.history().iter().all(|r| r.migrations <= 10));
}

#[test]
fn cola_collocates_instantly_but_churns() {
    let groups_per_op = 30u32;
    let workers = 6usize;
    let workload = AirlineJobWorkload::job2(20_000.0, groups_per_op, 5);
    let mut engine = SimEngine::with_round_robin(
        workload,
        Cluster::homogeneous(workers),
        CostModel::default(),
    );
    let mut policy = AdaptationFramework::balancing_only(Cola::default());
    drive(&mut engine, &mut policy, 5);
    let first = &engine.history()[0];
    assert!(
        first.collocation_factor > 90.0,
        "COLA optimizes from scratch: {:.1}%",
        first.collocation_factor
    );
    let total_migrations: usize = engine.history().iter().map(|r| r.migrations).sum();
    assert!(
        total_migrations > 30,
        "COLA churns heavily, got {total_migrations}"
    );
}

#[test]
fn integrated_scale_in_drains_and_rebalances() {
    let cfg = SyntheticConfig {
        mean_node_load: 30.0,
        ..SyntheticConfig::cluster(10)
    };
    let mut engine = SimEngine::with_round_robin(
        SyntheticWorkload::new(cfg),
        Cluster::homogeneous(10),
        CostModel::default(),
    );
    let mut policy = AdaptationFramework::with_scaling(
        MilpBalancer::new(MigrationBudget::Count(40)),
        ThresholdScaling::new(40.0, 85.0, 55.0),
    );
    drive(&mut engine, &mut policy, 12);
    // Underloaded cluster must have shed nodes, and all survivors balanced.
    assert!(
        engine.cluster().len() < 10,
        "scale-in expected, still {} nodes",
        engine.cluster().len()
    );
    let last = engine.history().last().unwrap();
    assert!(
        last.load_distance < 25.0,
        "distance {:.1}",
        last.load_distance
    );
}

#[test]
fn wiki_job_runs_at_paper_scale_in_simulation() {
    let workload = WikiJob1Workload::new(70_000.0, 100, 9);
    let mut engine =
        SimEngine::with_round_robin(workload, Cluster::homogeneous(20), CostModel::default());
    let mut policy =
        AdaptationFramework::balancing_only(MilpBalancer::new(MigrationBudget::Count(13)));
    drive(&mut engine, &mut policy, 10);
    let tail: Vec<f64> = engine
        .history()
        .iter()
        .skip(5)
        .map(|r| r.load_distance)
        .collect();
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(mean < 12.0, "steady-state distance too high: {mean:.2}");
    assert!(engine.history().iter().all(|r| r.migrations <= 13));
}

#[test]
fn simulator_and_runtime_agree_on_statistics_semantics() {
    // The same logical job measured by both substrates must expose the
    // same *kind* of signals: nonzero group loads for active groups, a
    // consistent allocation snapshot, comm rates between the operators.
    use albic::workloads::jobs::job2_topology;
    let (topology, ops) = job2_topology(8);
    let cluster = Cluster::homogeneous(2);
    let ids: Vec<NodeId> = cluster.nodes().iter().map(|n| n.id).collect();
    let routing = RoutingTable::round_robin(topology.num_key_groups(), &ids);
    let mut rt =
        albic::engine::runtime::Runtime::start(topology, cluster, routing, CostModel::default());
    let stream = albic::workloads::airline::AirlineOnTimeStream::new(200.0, 1);
    rt.inject(ops[0], stream.tuples(0));
    rt.quiesce(6);
    let stats = rt.end_period();
    rt.shutdown();

    assert_eq!(stats.allocation.len(), 24);
    assert!(stats.total_tuples > 0.0);
    assert!(stats.comm_tuples > 0.0);
    // MILP can consume runtime statistics directly.
    let cluster = Cluster::homogeneous(2);
    let ns = NodeSet::from_cluster(&cluster);
    let mut balancer = MilpBalancer::new(MigrationBudget::Unlimited);
    let out = balancer.allocate(&stats, &ns, &CostModel::default());
    assert!(out.projected_distance <= stats.load_distance(&cluster) + 1e-9);
}
