//! Cross-crate integration tests: the full stack working together —
//! workload → engine (simulator and threaded runtime) → policy → plan →
//! migration → measurable improvement. All runs are assembled with the
//! fluent `Job` builder, the crate's public front door.

use albic::core::allocator::{KeyGroupAllocator, NodeSet};
use albic::engine::{Cluster, CostModel};
use albic::job::{Job, Policy};
use albic::milp::MigrationBudget;
use albic::workloads::airline::AirlineJobWorkload;
use albic::workloads::wikipedia::WikiJob1Workload;
use albic::workloads::{SyntheticConfig, SyntheticWorkload};

#[test]
fn milp_beats_flux_on_skewed_synthetic_load() {
    let mk = || {
        let cfg = SyntheticConfig {
            varies: 60.0,
            ..SyntheticConfig::cluster(20)
        };
        SyntheticWorkload::new(cfg)
    };
    let run = |policy: Policy| -> f64 {
        let mut job = Job::builder()
            .nodes(20)
            .policy(policy)
            .build_simulated(mk())
            .expect("valid job spec");
        job.run(1).last().unwrap().load_distance
    };
    let milp_d = run(Policy::milp().with_budget(MigrationBudget::Count(20)));
    let flux_d = run(Policy::flux(20));
    assert!(
        milp_d <= flux_d + 1e-6,
        "MILP ({milp_d:.2}) must not lose to Flux ({flux_d:.2})"
    );
    assert!(
        milp_d < 10.0,
        "MILP should reach a good balance, got {milp_d:.2}"
    );
}

#[test]
fn albic_converges_to_collocation_on_job2() {
    let groups_per_op = 30u32;
    let workers = 6usize;
    let workload = AirlineJobWorkload::job2(20_000.0, groups_per_op, 5);
    let downstream = workload.downstream_groups();
    // Worst-case start: every 1-1 pair split.
    let assignment: Vec<u32> = (0..groups_per_op * 2)
        .map(|g| {
            let op = g / groups_per_op;
            ((g % groups_per_op) + op) % workers as u32
        })
        .collect();
    let mut job = Job::builder()
        .nodes(workers)
        .routing_assignment(assignment)
        .policy(
            Policy::albic()
                .with_budget(MigrationBudget::Count(10))
                .with_downstream(downstream),
        )
        .build_simulated(workload)
        .expect("valid job spec");
    let history = job.run(40).to_vec();

    let first = history[0].collocation_factor;
    let last = history.last().unwrap().collocation_factor;
    assert!(
        last > first + 30.0,
        "collocation must improve substantially: {first:.1}% → {last:.1}%"
    );
    // Load index falls as cross-node traffic disappears.
    let idx = albic::core::metrics::load_index_series(&history, 2);
    assert!(
        idx.last().unwrap() < &85.0,
        "load index must drop, got {:.1}",
        idx.last().unwrap()
    );
    // ALBIC stays within its migration budget every period.
    assert!(history.iter().all(|r| r.migrations <= 10));
}

#[test]
fn cola_collocates_instantly_but_churns() {
    let workload = AirlineJobWorkload::job2(20_000.0, 30, 5);
    let mut job = Job::builder()
        .nodes(6)
        .policy(Policy::cola())
        .build_simulated(workload)
        .expect("valid job spec");
    let history = job.run(5);
    let first = &history[0];
    assert!(
        first.collocation_factor > 90.0,
        "COLA optimizes from scratch: {:.1}%",
        first.collocation_factor
    );
    let total_migrations: usize = history.iter().map(|r| r.migrations).sum();
    assert!(
        total_migrations > 30,
        "COLA churns heavily, got {total_migrations}"
    );
}

#[test]
fn integrated_scale_in_drains_and_rebalances() {
    let cfg = SyntheticConfig {
        mean_node_load: 30.0,
        ..SyntheticConfig::cluster(10)
    };
    let mut job = Job::builder()
        .nodes(10)
        .policy(
            Policy::milp()
                .with_budget(MigrationBudget::Count(40))
                .with_scaling(40.0, 85.0, 55.0),
        )
        .build_simulated(SyntheticWorkload::new(cfg))
        .expect("valid job spec");
    let _ = job.run(12);
    // Underloaded cluster must have shed nodes, and all survivors balanced.
    assert!(
        job.cluster().len() < 10,
        "scale-in expected, still {} nodes",
        job.cluster().len()
    );
    let summary = job.report();
    assert!(summary.peak_nodes <= 10);
    assert!(
        summary.final_load_distance < 25.0,
        "distance {:.1}",
        summary.final_load_distance
    );
}

#[test]
fn wiki_job_runs_at_paper_scale_in_simulation() {
    let workload = WikiJob1Workload::new(70_000.0, 100, 9);
    let mut job = Job::builder()
        .nodes(20)
        .policy(Policy::milp().with_budget(MigrationBudget::Count(13)))
        .build_simulated(workload)
        .expect("valid job spec");
    let history = job.run(10);
    let tail: Vec<f64> = history.iter().skip(5).map(|r| r.load_distance).collect();
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(mean < 12.0, "steady-state distance too high: {mean:.2}");
    assert!(history.iter().all(|r| r.migrations <= 13));
}

#[test]
fn simulator_and_runtime_agree_on_statistics_semantics() {
    // The same logical job measured by both substrates must expose the
    // same *kind* of signals: nonzero group loads for active groups, a
    // consistent allocation snapshot, comm rates between the operators.
    use albic::workloads::jobs::job2_topology;
    let (topology, _ops) = job2_topology(8);
    let mut job = Job::builder()
        .topology(topology)
        .nodes(2)
        .policy(Policy::noop())
        .build_threaded()
        .expect("valid job spec");
    let stream = albic::workloads::airline::AirlineOnTimeStream::new(200.0, 1);
    job.inject("flights-src", stream.tuples(0));
    let stats = job.step().stats;
    job.shutdown();

    assert_eq!(stats.allocation.len(), 24);
    assert!(stats.total_tuples > 0.0);
    assert!(stats.comm_tuples > 0.0);
    // MILP can consume runtime statistics directly.
    let cluster = Cluster::homogeneous(2);
    let ns = NodeSet::from_cluster(&cluster);
    let mut balancer = albic::core::MilpBalancer::new(MigrationBudget::Unlimited);
    let out = balancer.allocate(&stats, &ns, &CostModel::default());
    assert!(out.projected_distance <= stats.load_distance(&cluster) + 1e-9);
}
