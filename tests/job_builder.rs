//! Builder validation: one test per `JobError` variant. The builder must
//! reject malformed job specs with a typed error at `build_*` time —
//! never a panic, never a silently misconfigured engine.

use albic::engine::operator::{Counting, Identity};
use albic::engine::sim::{WorkloadModel, WorkloadSnapshot};
use albic::engine::topology::TopologyError;
use albic::engine::RoutingTable;
use albic::job::{Job, JobError, Policy};
use albic::types::{NodeId, Period};
use albic::workloads::jobs::job2_topology;

struct Flat {
    groups: u32,
}
impl WorkloadModel for Flat {
    fn num_groups(&self) -> u32 {
        self.groups
    }
    fn snapshot(&mut self, _p: Period) -> WorkloadSnapshot {
        WorkloadSnapshot {
            group_tuples: vec![100.0; self.groups as usize],
            group_cost: vec![1.0; self.groups as usize],
            comm: vec![],
            state_bytes: vec![64.0; self.groups as usize],
        }
    }
}

#[test]
fn empty_topology_is_rejected_for_threaded_jobs() {
    let err = Job::builder().nodes(2).build_threaded().unwrap_err();
    assert_eq!(err, JobError::EmptyTopology);
    // ...but a simulated job takes its key-group space from the workload.
    assert!(Job::builder()
        .nodes(2)
        .build_simulated(Flat { groups: 4 })
        .is_ok());
}

#[test]
fn duplicate_operator_names_are_rejected() {
    let err = Job::builder()
        .source("a", 4, Identity)
        .operator("a", 4, Counting)
        .nodes(2)
        .build_threaded()
        .unwrap_err();
    assert_eq!(err, JobError::DuplicateOperator("a".into()));
}

#[test]
fn dangling_edges_are_rejected() {
    let err = Job::builder()
        .source("a", 4, Identity)
        .edge("a", "missing")
        .nodes(2)
        .build_threaded()
        .unwrap_err();
    assert_eq!(
        err,
        JobError::DanglingEdge {
            from: "a".into(),
            to: "missing".into(),
            unknown: "missing".into(),
        }
    );
}

#[test]
fn cyclic_topologies_are_rejected() {
    let err = Job::builder()
        .source("a", 4, Identity)
        .operator("b", 4, Counting)
        .edge("a", "b")
        .edge("b", "a")
        .nodes(2)
        .build_threaded()
        .unwrap_err();
    assert_eq!(err, JobError::InvalidTopology(TopologyError::Cyclic));
    // Zero key groups surface through the same variant.
    let err = Job::builder()
        .source("a", 0, Identity)
        .nodes(2)
        .build_threaded()
        .unwrap_err();
    assert_eq!(
        err,
        JobError::InvalidTopology(TopologyError::NoKeyGroups(0))
    );
}

#[test]
fn mixing_prebuilt_topology_with_fluent_operators_is_rejected() {
    let (topology, _) = job2_topology(4);
    let err = Job::builder()
        .topology(topology)
        .operator("extra", 4, Counting)
        .nodes(2)
        .build_threaded()
        .unwrap_err();
    assert_eq!(err, JobError::MixedTopology);
}

#[test]
fn zero_nodes_is_rejected() {
    // Explicit .nodes(0) and a never-specified cluster both fail.
    let err = Job::builder()
        .source("a", 4, Identity)
        .nodes(0)
        .build_threaded()
        .unwrap_err();
    assert_eq!(err, JobError::ZeroNodes);
    let err = Job::builder()
        .source("a", 4, Identity)
        .build_threaded()
        .unwrap_err();
    assert_eq!(err, JobError::ZeroNodes);
}

#[test]
fn routing_must_cover_every_key_group() {
    // 8 key groups, but only 3 routed.
    let err = Job::builder()
        .source("a", 8, Identity)
        .nodes(2)
        .routing_table(RoutingTable::all_on(3, NodeId::new(0)))
        .build_threaded()
        .unwrap_err();
    assert_eq!(
        err,
        JobError::RoutingMismatch {
            key_groups: 8,
            routed: 3
        }
    );
    // Same check for index-based assignments.
    let err = Job::builder()
        .nodes(2)
        .routing_assignment(vec![0, 1])
        .build_simulated(Flat { groups: 4 })
        .unwrap_err();
    assert_eq!(
        err,
        JobError::RoutingMismatch {
            key_groups: 4,
            routed: 2
        }
    );
}

#[test]
fn routing_to_nodes_outside_the_cluster_is_rejected() {
    let err = Job::builder()
        .source("a", 4, Identity)
        .nodes(2)
        .routing_table(RoutingTable::all_on(4, NodeId::new(9)))
        .build_threaded()
        .unwrap_err();
    assert_eq!(err, JobError::RoutingUnknownNode(NodeId::new(9)));
}

#[test]
fn routing_assignment_indices_must_be_in_range() {
    // Assignments are node *indices*, so the error reports the index and
    // the cluster size — not a (potentially misleading) node id.
    let err = Job::builder()
        .nodes(2)
        .routing_assignment(vec![0, 1, 0, 7])
        .build_simulated(Flat { groups: 4 })
        .unwrap_err();
    assert_eq!(err, JobError::RoutingIndexOutOfRange { index: 7, nodes: 2 });
}

#[test]
fn workload_must_match_the_declared_topology() {
    let err = Job::builder()
        .source("a", 8, Identity)
        .nodes(2)
        .build_simulated(Flat { groups: 4 })
        .unwrap_err();
    assert_eq!(
        err,
        JobError::WorkloadMismatch {
            key_groups: 8,
            workload_groups: 4
        }
    );
}

#[test]
fn albic_without_topology_needs_explicit_downstream_counts() {
    let err = Job::builder()
        .nodes(2)
        .policy(Policy::albic())
        .build_simulated(Flat { groups: 4 })
        .unwrap_err();
    assert_eq!(err, JobError::MissingDownstreamGroups);
    // With explicit counts the same spec builds.
    assert!(Job::builder()
        .nodes(2)
        .policy(Policy::albic().with_downstream(vec![0; 4]))
        .build_simulated(Flat { groups: 4 })
        .is_ok());
}

#[test]
fn downstream_counts_must_cover_every_key_group() {
    let err = Job::builder()
        .nodes(2)
        .policy(Policy::albic().with_downstream(vec![0; 3]))
        .build_simulated(Flat { groups: 8 })
        .unwrap_err();
    assert_eq!(
        err,
        JobError::DownstreamMismatch {
            key_groups: 8,
            downstream: 3
        }
    );
}

#[test]
fn inapplicable_policy_modifiers_are_rejected_not_ignored() {
    use albic::milp::MigrationBudget;
    // Flux's migration cap is its constructor argument; a with_budget on
    // top would be dead configuration.
    let err = Job::builder()
        .nodes(2)
        .policy(Policy::flux(20).with_budget(MigrationBudget::Count(5)))
        .build_simulated(Flat { groups: 4 })
        .unwrap_err();
    assert_eq!(
        err,
        JobError::UnsupportedPolicyOption {
            option: "with_budget",
            policy: "flux",
        }
    );
    // Noop and custom policies are used verbatim; scaling would be lost.
    let err = Job::builder()
        .nodes(2)
        .policy(Policy::noop().with_scaling(35.0, 80.0, 60.0))
        .build_simulated(Flat { groups: 4 })
        .unwrap_err();
    assert_eq!(
        err,
        JobError::UnsupportedPolicyOption {
            option: "with_scaling",
            policy: "noop",
        }
    );
}

#[test]
fn job_errors_display_actionable_messages() {
    let msg = JobError::ZeroNodes.to_string();
    assert!(msg.contains(".nodes(n)"), "{msg}");
    let msg = JobError::DanglingEdge {
        from: "a".into(),
        to: "b".into(),
        unknown: "b".into(),
    }
    .to_string();
    assert!(msg.contains("unknown operator"), "{msg}");
    let err: Box<dyn std::error::Error> = Box::new(JobError::EmptyTopology);
    assert!(!err.to_string().is_empty());
}
