//! Property-based tests over the core invariants of the stack.

use albic::engine::operator::{Counting, Identity};
use albic::engine::tuple::{hash_key, Tuple, Value};
use albic::engine::{Migration, ReconfigPlan, RuntimeConfig};
use albic::job::{Job, Policy};
use albic::milp::{solve_milp, AllocationProblem, Budget, GroupSpec, MigrationBudget, SolveStatus};
use albic::partition::{partition, GraphBuilder, PartitionConfig};
use albic::types::{KeyGroupId, NodeId};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = AllocationProblem> {
    (2usize..4, 2usize..7).prop_flat_map(|(nodes, groups)| {
        (
            proptest::collection::vec(1.0f64..20.0, groups),
            proptest::collection::vec(0.0f64..10.0, groups),
            proptest::collection::vec(0usize..nodes, groups),
            prop_oneof![
                (1usize..4).prop_map(MigrationBudget::Count),
                (1.0f64..30.0).prop_map(MigrationBudget::Cost),
                Just(MigrationBudget::Unlimited),
            ],
        )
            .prop_map(move |(loads, costs, current, budget)| AllocationProblem {
                num_nodes: nodes,
                killed: vec![false; nodes],
                capacity: vec![1.0; nodes],
                groups: loads
                    .into_iter()
                    .zip(costs)
                    .zip(current)
                    .map(|((load, migration_cost), current_node)| GroupSpec {
                        load,
                        migration_cost,
                        current_node,
                    })
                    .collect(),
                budget,
                collocate: vec![],
                pins: vec![],
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The structured solver's lower bound never exceeds the exact MILP
    /// optimum, and its achieved distance never beats it.
    #[test]
    fn structured_solver_brackets_exact_optimum(p in arb_problem()) {
        let (model, vars) = p.to_model();
        let exact = solve_milp(&model, &mut Budget::work(20_000)).unwrap();
        // Only check when the exact solver proved optimality.
        if matches!(exact.status, albic::milp::branch_bound::MilpStatus::Optimal) {
            let exact_d = exact.best.as_ref().unwrap().value(vars.d);
            let sol = p.solve(&mut Budget::unlimited());
            prop_assert!(sol.lower_bound <= exact_d + 1e-4,
                "bound {} exceeds exact {}", sol.lower_bound, exact_d);
            prop_assert!(sol.load_distance >= exact_d - 1e-4,
                "heuristic {} beat exact {}", sol.load_distance, exact_d);
        }
    }

    /// Solutions always satisfy the migration budget and assignment shape.
    #[test]
    fn solutions_respect_budget_and_shape(p in arb_problem()) {
        let sol = p.solve(&mut Budget::work(50_000));
        prop_assert_eq!(sol.assignment.len(), p.groups.len());
        prop_assert!(sol.assignment.iter().all(|&n| n < p.num_nodes));
        if sol.status != SolveStatus::Infeasible {
            match p.budget {
                MigrationBudget::Count(k) => prop_assert!(sol.migrations.len() <= k),
                MigrationBudget::Cost(c) => {
                    let spent: f64 = sol
                        .migrations
                        .iter()
                        .map(|&g| p.groups[g].migration_cost)
                        .sum();
                    prop_assert!(spent <= c + 1e-6, "spent {spent} over {c}");
                }
                MigrationBudget::Unlimited => {}
            }
        }
    }

    /// Lemma 1: the solver never migrates a group *into* a node marked for
    /// removal.
    #[test]
    fn lemma1_never_migrate_into_killed(mut p in arb_problem(), kill in 0usize..3) {
        let kill = kill % p.num_nodes;
        p.killed[kill] = true;
        // At least one alive node must remain.
        prop_assume!(p.killed.iter().filter(|k| !**k).count() >= 1);
        let sol = p.solve(&mut Budget::work(50_000));
        for &g in &sol.migrations {
            prop_assert_ne!(sol.assignment[g], kill,
                "group {} moved into killed node", g);
        }
    }

    /// Graph partitioner: assignments are complete, in range, and the
    /// reported weights/cut are consistent.
    #[test]
    fn partitioner_invariants(
        n in 2usize..40,
        k in 1usize..6,
        edges in proptest::collection::vec((0usize..40, 0usize..40, 1.0f64..5.0), 0..80),
    ) {
        let mut b = GraphBuilder::new(n);
        for (u, v, w) in edges {
            if u < n && v < n {
                b.add_edge(u, v, w);
            }
        }
        let g = b.build();
        let part = partition(&g, &PartitionConfig::k(k));
        prop_assert_eq!(part.assignment.len(), n);
        prop_assert!(part.assignment.iter().all(|&x| x < k));
        let total: f64 = part.part_weights.iter().sum();
        prop_assert!((total - g.total_weight()).abs() < 1e-6);
        prop_assert_eq!(part.edge_cut, g.cut_kway(&part.assignment));
    }

    /// The batched data plane is invisible to delivery semantics: for any
    /// (batch size, channel capacity, tuple schedule), the batched
    /// runtime delivers exactly the same per-key-group tuple multiset as
    /// an unbatched (`batch_size = 1`) oracle run of the same schedule —
    /// including across a mid-stream migration — and the routing table
    /// invariants hold after every flush.
    #[test]
    fn batched_runtime_matches_unbatched_oracle(
        batch_size in 1usize..128,
        channel_capacity in 1usize..64,
        schedule in proptest::collection::vec((0u64..24, 1u32..24), 1..16),
    ) {
        let run = |cfg: RuntimeConfig| -> Result<(Vec<u64>, f64), proptest::TestCaseError> {
            let mut job = Job::builder()
                .source("events", 8, Identity)
                .operator("count", 8, Counting)
                .edge("events", "count")
                .nodes(2)
                .routing_all_on_first()
                .policy(Policy::noop())
                .runtime_config(cfg)
                .build_threaded()
                .expect("valid property job");
            let topology = job.engine().topology().clone();
            let cnt = topology.operator_by_name("count").unwrap();
            let half = schedule.len() / 2;
            let mut ts = 0u64;
            for (i, &(key, n)) in schedule.iter().enumerate() {
                job.inject(
                    "events",
                    (0..n).map(|_| {
                        ts += 1;
                        Tuple::keyed(&key, Value::Int(ts as i64), ts)
                    }),
                );
                // Mid-stream migration: move the first key's counter
                // group off the skewed node while tuples are in flight.
                if i == half {
                    let group = topology.group_for_key(cnt, hash_key(&schedule[0].0));
                    let report = job.apply(&ReconfigPlan {
                        migrations: vec![Migration { group, to: NodeId::new(1) }],
                        ..Default::default()
                    });
                    prop_assert!(report.failed.is_empty(), "{:?}", report.failed);
                }
                // Routing invariants after every flush: complete cover of
                // the key-group space, every entry on a live node, and
                // the per-node group lists partition the space.
                let routing = job.engine().routing_snapshot();
                prop_assert_eq!(routing.len() as u32, topology.num_key_groups());
                for (kg, node) in routing.iter() {
                    prop_assert!(
                        job.cluster().get(node).is_some(),
                        "group {:?} routed to unknown node {:?}", kg, node
                    );
                }
                let covered: usize = job
                    .cluster()
                    .nodes()
                    .iter()
                    .map(|n| routing.groups_on(n.id).len())
                    .sum();
                prop_assert_eq!(covered, routing.len());
            }
            job.settle();
            let counts: Vec<u64> = (0..topology.num_key_groups())
                .map(|g| {
                    let kg = KeyGroupId::new(g);
                    if topology.operator_of_group(kg) != cnt {
                        return 0;
                    }
                    job.engine()
                        .probe_state(kg)
                        .map(|b| {
                            let mut a = [0u8; 8];
                            a.copy_from_slice(&b[..8]);
                            u64::from_le_bytes(a)
                        })
                        .unwrap_or(0)
                })
                .collect();
            let stats = job.measure();
            let dropped = stats.dropped_tuples;
            job.shutdown();
            Ok((counts, dropped))
        };

        let cfg = RuntimeConfig {
            batch_size,
            channel_capacity,
            ..RuntimeConfig::default()
        };
        let (batched, dropped) = run(cfg)?;
        let (oracle, oracle_dropped) = run(RuntimeConfig {
            batch_size: 1,
            ..RuntimeConfig::default()
        })?;
        prop_assert_eq!(&batched, &oracle, "batched delivery diverged from the per-tuple oracle");
        prop_assert_eq!(dropped, 0.0);
        prop_assert_eq!(oracle_dropped, 0.0);

        // And both match the arithmetic ground truth.
        let total: u64 = schedule.iter().map(|&(_, n)| n as u64).sum();
        prop_assert_eq!(batched.iter().sum::<u64>(), total);
    }

    /// Checkpoint-based recovery is exactly-once: for any (checkpoint
    /// interval, fault step, batch size, tuple schedule), killing a
    /// worker mid-run and recovering from the latest checkpoint plus the
    /// inject-side log yields final counter states identical to the
    /// fault-free per-tuple oracle multiset, with nothing dropped.
    #[test]
    fn recovered_states_match_the_fault_free_oracle(
        checkpoint_interval in 1u64..4,
        fault_step in 0u64..4,
        batch_size in 1usize..64,
        schedule in proptest::collection::vec((0u64..24, 1u32..16), 1..12),
    ) {
        const PERIODS: u64 = 4;
        let mut job = Job::builder()
            .source("events", 8, Identity)
            .operator("count", 8, Counting)
            .edge("events", "count")
            .nodes(3)
            .checkpoint_interval(checkpoint_interval)
            .policy(Policy::noop())
            .runtime_config(RuntimeConfig {
                batch_size,
                ..RuntimeConfig::default()
            })
            .build_threaded()
            .expect("valid property job");
        let topology = job.engine().topology().clone();
        let cnt = topology.operator_by_name("count").unwrap();
        let victim = NodeId::new(1);
        let mut ts = 0u64;
        for p in 0..PERIODS {
            if p == fault_step {
                prop_assert!(job.engine_mut().inject_fault(victim));
            }
            for &(key, n) in &schedule {
                job.inject(
                    "events",
                    (0..n).map(|_| {
                        ts += 1;
                        Tuple::keyed(&key, Value::Int(ts as i64), ts)
                    }),
                );
            }
            let report = job.step();
            prop_assert_eq!(
                report.recovery.failed.len(),
                usize::from(p == fault_step),
                "recovery must happen exactly in the fault step"
            );
            prop_assert_eq!(report.stats.dropped_tuples, 0.0);
        }
        job.settle();

        // The fault-free oracle, computed per tuple: each scheduled tuple
        // increments its key's counter group exactly once per period.
        let mut expected = vec![0u64; topology.num_key_groups() as usize];
        for &(key, n) in &schedule {
            let kg = topology.group_for_key(cnt, hash_key(&key));
            expected[kg.index()] += n as u64 * PERIODS;
        }
        let counts: Vec<u64> = (0..topology.num_key_groups())
            .map(|g| {
                let kg = KeyGroupId::new(g);
                if topology.operator_of_group(kg) != cnt {
                    return 0;
                }
                job.engine()
                    .probe_state(kg)
                    .map(|b| {
                        let mut a = [0u8; 8];
                        a.copy_from_slice(&b[..8]);
                        u64::from_le_bytes(a)
                    })
                    .unwrap_or(0)
            })
            .collect();
        prop_assert_eq!(&counts, &expected,
            "recovered states diverged from the fault-free oracle");
        prop_assert_eq!(job.cluster().len(), 2, "the corpse left the cluster");
        job.shutdown();
    }

    /// The engine's tuple codec round-trips arbitrary nested values.
    #[test]
    fn codec_roundtrips_values(s in "\\PC{0,24}", i in any::<i64>(), f in any::<f64>()) {
        use albic::engine::codec::{Reader, Writer};
        use albic::engine::tuple::Value;
        let v = Value::List(vec![
            Value::Str(s),
            Value::Int(i),
            if f.is_nan() { Value::Null } else { Value::Float(f) },
            Value::List(vec![Value::Null]),
        ]);
        let mut w = Writer::new();
        w.put_value(&v);
        let bytes = w.into_bytes();
        let back = Reader::new(&bytes).get_value().unwrap();
        prop_assert_eq!(back, v);
    }

    /// The transport's frame and body decoders fail closed on arbitrary
    /// bytes: whatever a peer writes into the socket, decoding returns an
    /// error instead of panicking or allocating attacker-sized buffers.
    #[test]
    fn frame_decoders_survive_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        albic::engine::transport::fuzz_decode(&bytes);
    }

    /// The same with well-formed framing wrapped around a garbage body,
    /// so the fuzz gets past the length prefix and into every per-kind
    /// body decoder.
    #[test]
    fn frame_decoders_survive_framed_garbage(
        kind in 0u8..11,
        body in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut framed = ((body.len() as u32) + 1).to_le_bytes().to_vec();
        framed.push(kind);
        framed.extend_from_slice(&body);
        albic::engine::transport::fuzz_decode(&framed);
    }

    /// A lossy-link model of the session layer: the sender produces
    /// numbered frames, the link delivers an arbitrary prefix of the
    /// pending window and then dies, and the peers re-handshake RESUME
    /// style — the sender learns the receiver's contiguous delivery mark
    /// and replays from there. Whatever the loss pattern, the receiver
    /// must end up having delivered every payload exactly once, in order.
    #[test]
    fn session_resume_replays_exactly_once(
        rounds in proptest::collection::vec((0usize..8, 0usize..10), 1..12),
    ) {
        use albic::engine::transport::{RecvSequencer, SendSequencer, SeqVerdict};
        let mut send = SendSequencer::new(1024);
        let mut recv = RecvSequencer::new();
        let mut delivered: Vec<u64> = Vec::new();
        let mut produced = 0u64;
        for (produce, lose) in rounds {
            for _ in 0..produce {
                send.push(3, produced.to_le_bytes().to_vec());
                produced += 1;
            }
            // The socket delivers the replay suffix minus a lost tail...
            let window: Vec<(u64, Vec<u8>)> = send
                .pending(recv.delivered())
                .map(|(seq, _kind, body)| (seq, body.to_vec()))
                .collect();
            let surviving = window.len().saturating_sub(lose);
            for (seq, body) in window.into_iter().take(surviving) {
                match recv.accept(seq) {
                    SeqVerdict::Fresh => {
                        let mut a = [0u8; 8];
                        a.copy_from_slice(&body[..8]);
                        delivered.push(u64::from_le_bytes(a));
                    }
                    SeqVerdict::Duplicate => {}
                    SeqVerdict::Gap => prop_assert!(false, "in-order link cannot gap"),
                }
            }
            // ...then dies; the RESUME handshake exchanges the delivery
            // mark, which must always be a valid resume point.
            prop_assert!(send.valid_resume_point(recv.delivered()));
            send.ack(recv.delivered());
        }
        // A final lossless replay drains whatever the last cut stranded.
        let tail: Vec<(u64, Vec<u8>)> = send
            .pending(recv.delivered())
            .map(|(seq, _kind, body)| (seq, body.to_vec()))
            .collect();
        for (seq, body) in tail {
            if recv.accept(seq) == SeqVerdict::Fresh {
                let mut a = [0u8; 8];
                a.copy_from_slice(&body[..8]);
                delivered.push(u64::from_le_bytes(a));
            }
        }
        prop_assert_eq!(delivered, (0..produced).collect::<Vec<u64>>(),
            "every frame delivered exactly once, in order");
    }
}

/// A fresh, collision-free spill directory for one property case.
fn prop_spill_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CASE: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "albic-prop-spill-{}-{tag}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The incremental checkpoint store is indistinguishable from a full
    /// snapshot: for any interleaving of captures (with arbitrary dirty
    /// sets), abandoned gathers, compaction schedules, and spill
    /// configurations, `full_states()` always reproduces the live-state
    /// oracle map — base + deltas + spilled files lose and double
    /// nothing.
    #[test]
    fn checkpoint_store_matches_a_full_snapshot_oracle(
        max_layers in 1usize..6,
        cold_after in 1u64..4,
        spill in any::<bool>(),
        captures in proptest::collection::vec(
            (proptest::collection::vec((0u32..12, 1usize..48), 0..6), 0u8..10),
            1..20,
        ),
    ) {
        use albic::engine::checkpoint::{CheckpointMode, CheckpointStore, SpillConfig};
        use std::collections::{BTreeSet, HashMap};

        let dir = prop_spill_dir("store");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = spill.then(|| SpillConfig { dir: dir.clone(), cold_after });
        let mut store = CheckpointStore::new(CheckpointMode::Incremental, max_layers, cfg);
        let mut live: HashMap<u32, Vec<u8>> = HashMap::new();
        let mut dirty: BTreeSet<u32> = BTreeSet::new();
        for (period, (writes, roll)) in captures.iter().enumerate() {
            for &(g, len) in writes {
                live.insert(g, vec![(period as u8) ^ (g as u8); len]);
                dirty.insert(g);
            }
            if *roll == 0 {
                // A worker died mid-gather: the capture is abandoned and
                // the next one is forced full.
                store.abandon();
                continue;
            }
            let full = store.wants_full();
            let states: Vec<(u32, Vec<u8>)> = if full {
                let mut all: Vec<_> = live.iter().map(|(&g, b)| (g, b.clone())).collect();
                all.sort_unstable_by_key(|(g, _)| *g);
                all
            } else {
                dirty.iter().map(|&g| (g, live[&g].clone())).collect()
            };
            store.ingest(period as u64, states, full);
            dirty.clear();

            let mut oracle: Vec<(u32, Vec<u8>)> =
                live.iter().map(|(&g, b)| (g, b.clone())).collect();
            oracle.sort_unstable_by_key(|(g, _)| *g);
            let restored = store.full_states().expect("spill files readable");
            prop_assert_eq!(&restored, &oracle,
                "restore diverged at period {} (full={})", period, full);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end: incremental checkpoints with a spill tier recover
    /// exactly-once for any (interval, fault step, cold threshold,
    /// schedule). The schedule starves half the keys after period 0 so
    /// groups actually go cold and spill, and the final probe faults them
    /// back in — the counts must match the arithmetic oracle.
    #[test]
    fn incremental_recovery_with_spill_matches_the_oracle(
        checkpoint_interval in 1u64..4,
        fault_step in 0u64..5,
        cold_after in 1u64..4,
        schedule in proptest::collection::vec((0u64..24, 1u32..12), 2..10),
    ) {
        use albic::engine::checkpoint::CheckpointMode;

        const PERIODS: u64 = 5;
        let dir = prop_spill_dir("e2e");
        let _ = std::fs::remove_dir_all(&dir);
        let mut job = Job::builder()
            .source("events", 8, Identity)
            .operator("count", 8, Counting)
            .edge("events", "count")
            .nodes(3)
            .checkpoint_interval(checkpoint_interval)
            .checkpoint_mode(CheckpointMode::Incremental)
            .spill_dir(dir.clone())
            .cold_after(cold_after)
            .policy(Policy::noop())
            .build_threaded()
            .expect("valid property job");
        let topology = job.engine().topology().clone();
        let cnt = topology.operator_by_name("count").unwrap();
        let victim = NodeId::new(1);
        let half = schedule.len() / 2;
        let mut ts = 0u64;
        for p in 0..PERIODS {
            if p == fault_step {
                prop_assert!(job.engine_mut().inject_fault(victim));
            }
            let active = if p == 0 { &schedule[..] } else { &schedule[..half] };
            for &(key, n) in active {
                job.inject(
                    "events",
                    (0..n).map(|_| {
                        ts += 1;
                        Tuple::keyed(&key, Value::Int(ts as i64), ts)
                    }),
                );
            }
            let report = job.step();
            prop_assert_eq!(
                report.recovery.failed.len(),
                usize::from(p == fault_step),
                "recovery must happen exactly in the fault step"
            );
            prop_assert_eq!(report.stats.dropped_tuples, 0.0);
        }
        job.settle();

        let mut expected = vec![0u64; topology.num_key_groups() as usize];
        for (i, &(key, n)) in schedule.iter().enumerate() {
            let kg = topology.group_for_key(cnt, hash_key(&key));
            let reps = if i < half { PERIODS } else { 1 };
            expected[kg.index()] += n as u64 * reps;
        }
        let counts: Vec<u64> = (0..topology.num_key_groups())
            .map(|g| {
                let kg = KeyGroupId::new(g);
                if topology.operator_of_group(kg) != cnt {
                    return 0;
                }
                job.engine()
                    .probe_state(kg)
                    .map(|b| {
                        let mut a = [0u8; 8];
                        a.copy_from_slice(&b[..8]);
                        u64::from_le_bytes(a)
                    })
                    .unwrap_or(0)
            })
            .collect();
        prop_assert_eq!(&counts, &expected,
            "incremental + spill recovery diverged from the oracle");
        job.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
