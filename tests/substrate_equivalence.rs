//! Sim-vs-runtime equivalence: the module docs promise that "policies
//! cannot tell which substrate they run on". This test proves it through
//! the public `Job` API: two builder calls that differ only in
//! `build_threaded()` vs `build_simulated(..)` observe the same workload
//! and must make bit-identical migration decisions every period, ending
//! with identical routing assignments.

use std::collections::HashMap;
use std::time::Duration;

use albic::engine::fault::{FaultInjector, FaultPlan};
use albic::engine::operator::{Counting, Identity};
use albic::engine::sim::{WorkloadModel, WorkloadSnapshot};
use albic::engine::tuple::{hash_key, Tuple, Value};
use albic::engine::{PeriodStats, ReconfigMode, ReconfigPlan, RuntimeConfig};
use albic::job::{Job, JobBuilder, Policy};
use albic::milp::MigrationBudget;
use albic::types::{KeyGroupId, NodeId, Period};

const KEYS: u64 = 40;
const PERIODS: usize = 4;

/// Deterministic skewed per-key tuple counts for one period.
fn tuples_of(key: u64, period: u64) -> u64 {
    3 + (key * 7 + period * 5) % 13 + if key < 4 { 40 } else { 0 }
}

/// Replays precomputed snapshots — the rate-level view of exactly the
/// tuples the runtime test injects.
struct Recorded {
    groups: u32,
    snapshots: Vec<WorkloadSnapshot>,
}

impl WorkloadModel for Recorded {
    fn num_groups(&self) -> u32 {
        self.groups
    }
    fn snapshot(&mut self, period: Period) -> WorkloadSnapshot {
        self.snapshots[period.index() as usize].clone()
    }
}

/// The logical job, identically declared for either substrate: a
/// pass-through source feeding a stateful per-key counter, 8 key groups
/// each, everything starting on node 0 of a 2-node cluster.
fn builder() -> JobBuilder {
    Job::builder()
        .source("events", 8, Identity)
        .operator("count", 8, Counting)
        .edge("events", "count")
        .nodes(2)
        .routing_all_on_first()
        .policy(Policy::milp().with_budget(MigrationBudget::Count(6)))
}

/// Bit-identical equivalence must hold for *any* data-plane tuning: the
/// default batched configuration, the degenerate per-tuple one, and a
/// deliberately starved channel that forces backpressure on every hop.
#[test]
fn equivalent_with_default_batching() {
    assert_substrate_equivalence(RuntimeConfig::default(), ReconfigMode::Quiesce);
}

#[test]
fn equivalent_with_per_tuple_data_plane() {
    assert_substrate_equivalence(
        RuntimeConfig {
            batch_size: 1,
            ..RuntimeConfig::default()
        },
        ReconfigMode::Quiesce,
    );
}

#[test]
fn equivalent_with_tiny_channel_capacity() {
    assert_substrate_equivalence(
        RuntimeConfig {
            batch_size: 7,
            channel_capacity: 2,
            flush_interval: Duration::from_micros(50),
            ..RuntimeConfig::default()
        },
        ReconfigMode::Quiesce,
    );
}

/// Epoch-aligned applies must be invisible to the decision layer: the
/// same workload and policy in epoch mode, on both substrates, produce
/// the identical signals, plans and final routing the quiesced mode
/// does — migrations just execute without the global pause.
#[test]
fn equivalent_in_epoch_mode() {
    assert_substrate_equivalence(RuntimeConfig::default(), ReconfigMode::Epoch);
}

/// Epoch mode with periodic no-op barrier waves streaming through the
/// data plane: alignment runs continuously under load and still changes
/// nothing observable.
#[test]
fn equivalent_in_epoch_mode_with_barrier_interval() {
    assert_substrate_equivalence(
        RuntimeConfig {
            barrier_interval: 128,
            ..RuntimeConfig::default()
        },
        ReconfigMode::Epoch,
    );
}

fn assert_substrate_equivalence(cfg: RuntimeConfig, mode: ReconfigMode) {
    // --- Substrate A: the threaded runtime. ---
    let mut rt_job = builder()
        .runtime_config(cfg)
        .reconfig_mode(mode)
        .build_threaded()
        .expect("valid job spec");
    let topology = rt_job.engine().topology().clone();
    let num_groups = topology.num_key_groups();
    let (src, cnt) = (
        topology.operator_by_name("events").unwrap(),
        topology.operator_by_name("count").unwrap(),
    );

    // Key → (source group, counter group), via the same hashing the
    // runtime routes with.
    let key_groups: Vec<(KeyGroupId, KeyGroupId)> = (0..KEYS)
        .map(|k| {
            let h = hash_key(&k);
            (
                topology.group_for_key(src, h),
                topology.group_for_key(cnt, h),
            )
        })
        .collect();

    let mut rt_plans: Vec<ReconfigPlan> = Vec::new();
    let mut rt_stats: Vec<PeriodStats> = Vec::new();
    for p in 0..PERIODS as u64 {
        for k in 0..KEYS {
            let n = tuples_of(k, p);
            rt_job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
            );
        }
        let report = rt_job.step();
        assert!(report.apply.failed.is_empty(), "{:?}", report.apply.failed);
        rt_stats.push(report.stats);
        rt_plans.push(report.plan);
    }
    let rt_assignment = rt_job.engine().routing_snapshot().assignment().to_vec();
    rt_job.shutdown();

    // Precompute the rate-level snapshots the simulator will replay: per
    // period, the per-group tuple counts, the src→cnt flows, and the
    // resident counter states (8 bytes once a group has ever been active).
    let mut snapshots = Vec::with_capacity(PERIODS);
    let mut ever_active: Vec<bool> = vec![false; num_groups as usize];
    for p in 0..PERIODS as u64 {
        let mut group_tuples = vec![0.0; num_groups as usize];
        let mut comm: HashMap<(KeyGroupId, KeyGroupId), f64> = HashMap::new();
        for k in 0..KEYS {
            let n = tuples_of(k, p) as f64;
            let (gs, gc) = key_groups[k as usize];
            group_tuples[gs.index()] += n;
            group_tuples[gc.index()] += n;
            *comm.entry((gs, gc)).or_insert(0.0) += n;
            ever_active[gs.index()] = true;
            ever_active[gc.index()] = true;
        }
        // Identity groups keep zero-byte states; counter groups hold a
        // u64 (8 bytes) once they have seen a tuple.
        let state_bytes: Vec<f64> = (0..num_groups)
            .map(|g| {
                let kg = KeyGroupId::new(g);
                if ever_active[kg.index()] && topology.operator_of_group(kg) == cnt {
                    8.0
                } else {
                    0.0
                }
            })
            .collect();
        snapshots.push(WorkloadSnapshot {
            group_tuples,
            group_cost: vec![1.0; num_groups as usize],
            comm: comm.into_iter().map(|((a, b), n)| (a, b, n)).collect(),
            state_bytes,
        });
    }

    // --- Substrate B: the simulator, replaying the same workload through
    // the identical builder call. ---
    let mut sim_job = builder()
        .reconfig_mode(mode)
        .build_simulated(Recorded {
            groups: num_groups,
            snapshots,
        })
        .expect("valid job spec");
    let mut sim_plans: Vec<ReconfigPlan> = Vec::new();
    let mut sim_stats: Vec<PeriodStats> = Vec::new();
    for _ in 0..PERIODS {
        let report = sim_job.step();
        sim_stats.push(report.stats);
        sim_plans.push(report.plan);
    }
    let sim_assignment = sim_job.engine().routing().assignment().to_vec();

    // --- The policy must not be able to tell the substrates apart. ---
    for p in 0..PERIODS {
        // Identical statistics signals...
        assert_eq!(
            rt_stats[p].allocation, sim_stats[p].allocation,
            "period {p}: allocation snapshots diverge"
        );
        for g in 0..num_groups as usize {
            assert!(
                (rt_stats[p].group_loads[g] - sim_stats[p].group_loads[g]).abs() < 1e-9,
                "period {p}, group {g}: loads diverge ({} vs {})",
                rt_stats[p].group_loads[g],
                sim_stats[p].group_loads[g]
            );
        }
        assert_eq!(
            rt_stats[p].total_tuples, sim_stats[p].total_tuples,
            "period {p}: tuple totals diverge"
        );
        assert_eq!(
            rt_stats[p].cross_tuples, sim_stats[p].cross_tuples,
            "period {p}: cross-node traffic diverges"
        );
        // ...therefore identical decisions.
        let (rp, sp): (&ReconfigPlan, &ReconfigPlan) = (&rt_plans[p], &sim_plans[p]);
        assert_eq!(
            rp.migrations, sp.migrations,
            "period {p}: migration decisions diverge"
        );
        assert_eq!(rp.add_nodes, sp.add_nodes);
        assert_eq!(rp.mark_removal, sp.mark_removal);
    }
    let migrated: usize = rt_plans.iter().map(|p| p.migrations.len()).sum();
    assert!(
        migrated > 0,
        "the scenario must actually exercise migrations"
    );
    assert_eq!(
        rt_assignment, sim_assignment,
        "final routing assignments diverge"
    );
}

/// Recovery is substrate-equivalent too: the same [`FaultPlan`] (kill
/// node 1 before step 2) on the threaded runtime and on the simulator
/// yields bit-identical post-recovery decision signals, identical plans
/// every period, and identical final routing assignments — both engines
/// re-home lost groups through the one shared `recovery_placement`, and
/// the runtime's checkpoint-rollback + log-replay makes its measured
/// statistics count each logical tuple exactly once despite the crash.
#[test]
fn fault_plan_is_substrate_equivalent() {
    const NODES: usize = 3;
    let plan = || FaultPlan::new().kill(2, NodeId::new(1));
    let fault_builder = || {
        Job::builder()
            .source("events", 8, Identity)
            .operator("count", 8, Counting)
            .edge("events", "count")
            .nodes(NODES)
            .checkpoint_interval(1)
            .policy(Policy::milp().with_budget(MigrationBudget::Count(6)))
    };

    // --- Substrate A: the threaded runtime. ---
    let mut rt_job = fault_builder().build_threaded().expect("valid job spec");
    let topology = rt_job.engine().topology().clone();
    let num_groups = topology.num_key_groups();
    let (src, cnt) = (
        topology.operator_by_name("events").unwrap(),
        topology.operator_by_name("count").unwrap(),
    );
    let key_groups: Vec<(KeyGroupId, KeyGroupId)> = (0..KEYS)
        .map(|k| {
            let h = hash_key(&k);
            (
                topology.group_for_key(src, h),
                topology.group_for_key(cnt, h),
            )
        })
        .collect();

    let mut rt_faults = FaultInjector::new(plan());
    let mut rt_plans: Vec<ReconfigPlan> = Vec::new();
    let mut rt_stats: Vec<PeriodStats> = Vec::new();
    for p in 0..PERIODS as u64 {
        let killed = rt_faults.advance(rt_job.engine_mut());
        assert_eq!(killed.len(), usize::from(p == 2));
        for k in 0..KEYS {
            let n = tuples_of(k, p);
            rt_job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
            );
        }
        let report = rt_job.step();
        assert_eq!(report.recovery.failed.len(), usize::from(p == 2));
        assert!(report.apply.failed.is_empty(), "{:?}", report.apply.failed);
        rt_stats.push(report.stats);
        rt_plans.push(report.plan);
    }
    let rt_assignment = rt_job.engine().routing_snapshot().assignment().to_vec();
    let rt_history = rt_job.history().to_vec();
    rt_job.shutdown();

    // --- Substrate B: the simulator replaying the rate-level view of
    // the same schedule, under the same FaultPlan. ---
    let mut snapshots = Vec::with_capacity(PERIODS);
    let mut ever_active: Vec<bool> = vec![false; num_groups as usize];
    for p in 0..PERIODS as u64 {
        let mut group_tuples = vec![0.0; num_groups as usize];
        let mut comm: HashMap<(KeyGroupId, KeyGroupId), f64> = HashMap::new();
        for k in 0..KEYS {
            let n = tuples_of(k, p) as f64;
            let (gs, gc) = key_groups[k as usize];
            group_tuples[gs.index()] += n;
            group_tuples[gc.index()] += n;
            *comm.entry((gs, gc)).or_insert(0.0) += n;
            ever_active[gs.index()] = true;
            ever_active[gc.index()] = true;
        }
        let state_bytes: Vec<f64> = (0..num_groups)
            .map(|g| {
                let kg = KeyGroupId::new(g);
                if ever_active[kg.index()] && topology.operator_of_group(kg) == cnt {
                    8.0
                } else {
                    0.0
                }
            })
            .collect();
        snapshots.push(WorkloadSnapshot {
            group_tuples,
            group_cost: vec![1.0; num_groups as usize],
            comm: comm.into_iter().map(|((a, b), n)| (a, b, n)).collect(),
            state_bytes,
        });
    }
    let mut sim_job = fault_builder()
        .build_simulated(Recorded {
            groups: num_groups,
            snapshots,
        })
        .expect("valid job spec");
    let mut sim_faults = FaultInjector::new(plan());
    let mut sim_plans: Vec<ReconfigPlan> = Vec::new();
    let mut sim_stats: Vec<PeriodStats> = Vec::new();
    for _ in 0..PERIODS {
        let _ = sim_faults.advance(sim_job.engine_mut());
        let report = sim_job.step();
        sim_stats.push(report.stats);
        sim_plans.push(report.plan);
    }
    let sim_assignment = sim_job.engine().routing().assignment().to_vec();
    let sim_history = sim_job.history().to_vec();

    // --- Identical signals, identical decisions, identical placement. ---
    for p in 0..PERIODS {
        assert_eq!(
            rt_stats[p].allocation, sim_stats[p].allocation,
            "period {p}: post-recovery allocation snapshots diverge"
        );
        for g in 0..num_groups as usize {
            assert!(
                (rt_stats[p].group_loads[g] - sim_stats[p].group_loads[g]).abs() < 1e-9,
                "period {p}, group {g}: loads diverge ({} vs {})",
                rt_stats[p].group_loads[g],
                sim_stats[p].group_loads[g]
            );
        }
        assert_eq!(rt_stats[p].total_tuples, sim_stats[p].total_tuples);
        assert_eq!(rt_stats[p].cross_tuples, sim_stats[p].cross_tuples);
        assert_eq!(rt_stats[p].dropped_tuples, 0.0);
        assert_eq!(sim_stats[p].dropped_tuples, 0.0);
        assert_eq!(
            rt_plans[p].migrations, sim_plans[p].migrations,
            "period {p}: post-recovery migration decisions diverge"
        );
        assert_eq!(rt_plans[p].add_nodes, sim_plans[p].add_nodes);
        assert_eq!(rt_plans[p].mark_removal, sim_plans[p].mark_removal);
        assert_eq!(
            rt_history[p].failed_nodes, sim_history[p].failed_nodes,
            "period {p}: recovery accounting diverges"
        );
        assert_eq!(
            rt_history[p].groups_restored,
            sim_history[p].groups_restored
        );
        assert_eq!(rt_history[p].num_nodes, sim_history[p].num_nodes);
    }
    assert_eq!(rt_history[2].failed_nodes, 1, "the kill really landed");
    assert!(rt_history[2].groups_restored > 0);
    assert_eq!(
        rt_assignment, sim_assignment,
        "final post-recovery routing assignments diverge"
    );
}

/// Drive one threaded job (in-process or networked — the builder decides)
/// through the standard skewed workload, returning the per-period decision
/// signals and the final routing assignment.
fn run_threaded(builder: JobBuilder) -> (Vec<PeriodStats>, Vec<ReconfigPlan>, Vec<NodeId>) {
    let mut job = builder.build_threaded().expect("valid job spec");
    let mut plans = Vec::new();
    let mut stats = Vec::new();
    for p in 0..PERIODS as u64 {
        for k in 0..KEYS {
            let n = tuples_of(k, p);
            job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
            );
        }
        let report = job.step();
        assert!(report.apply.failed.is_empty(), "{:?}", report.apply.failed);
        stats.push(report.stats);
        plans.push(report.plan);
    }
    let assignment = job.engine().routing_snapshot().assignment().to_vec();
    job.shutdown();
    (stats, plans, assignment)
}

/// The networked substrate is equivalent too: the same job on real worker
/// processes over loopback TCP observes bit-identical statistics signals,
/// makes the identical migration decisions every period, and ends with the
/// identical routing assignment as the in-process runtime. (Wall-clock
/// pressure gauges are excluded — queue depths depend on socket timing.)
#[test]
fn networked_tcp_runtime_matches_in_process_bit_for_bit() {
    let (in_stats, in_plans, in_assignment) = run_threaded(builder());
    let net =
        albic::TransportOptions::Net(albic::NetConfig::tcp(env!("CARGO_BIN_EXE_albic-worker")));
    let (net_stats, net_plans, net_assignment) = run_threaded(builder().transport(net));

    let num_groups = in_stats[0].group_loads.len();
    for p in 0..PERIODS {
        assert_eq!(
            in_stats[p].allocation, net_stats[p].allocation,
            "period {p}: allocation snapshots diverge across the wire"
        );
        for g in 0..num_groups {
            assert!(
                (in_stats[p].group_loads[g] - net_stats[p].group_loads[g]).abs() < 1e-9,
                "period {p}, group {g}: loads diverge ({} vs {})",
                in_stats[p].group_loads[g],
                net_stats[p].group_loads[g]
            );
        }
        assert_eq!(
            in_stats[p].total_tuples, net_stats[p].total_tuples,
            "period {p}: tuple totals diverge across the wire"
        );
        assert_eq!(
            in_stats[p].cross_tuples, net_stats[p].cross_tuples,
            "period {p}: cross-node traffic diverges across the wire"
        );
        assert_eq!(in_stats[p].dropped_tuples, 0.0);
        assert_eq!(net_stats[p].dropped_tuples, 0.0);
        assert_eq!(
            in_plans[p].migrations, net_plans[p].migrations,
            "period {p}: migration decisions diverge across the wire"
        );
        assert_eq!(in_plans[p].add_nodes, net_plans[p].add_nodes);
        assert_eq!(in_plans[p].mark_removal, net_plans[p].mark_removal);
    }
    let migrated: usize = in_plans.iter().map(|p| p.migrations.len()).sum();
    assert!(migrated > 0, "the scenario must actually migrate over TCP");
    assert_eq!(
        in_assignment, net_assignment,
        "final routing assignments diverge across the wire"
    );
}

/// The runtime executes the decisions for real: after the equivalent run,
/// the counter state of a migrated group lives on its new node and counts
/// every injected tuple exactly once.
#[test]
fn runtime_migrations_really_move_state() {
    let mut job = Job::builder()
        .source("events", 4, Identity)
        .operator("count", 4, Counting)
        .edge("events", "count")
        .nodes(2)
        .routing_all_on_first()
        .policy(Policy::milp())
        .build_threaded()
        .expect("valid job spec");

    let key = 11u64;
    for p in 0..3u64 {
        let _ = job
            .inject(
                "events",
                (0..50u64).map(|i| Tuple::keyed(&key, Value::Int(i as i64), p)),
            )
            .step();
    }
    let rt = job.into_engine();
    let cnt = rt.topology().operator_by_name("count").unwrap();
    let kg = rt.topology().group_for_key(cnt, hash_key(&key));
    let bytes = rt.probe_state(kg).expect("counter state exists somewhere");
    let mut arr = [0u8; 8];
    arr.copy_from_slice(&bytes[..8]);
    assert_eq!(u64::from_le_bytes(arr), 150, "every tuple counted once");
    rt.shutdown();
}
