//! Deterministic fault injection against the threaded runtime: a scripted
//! worker kill during sustained load must lose no key group, and the
//! recovered counter states must be bit-equal to a fault-free oracle run
//! of the same schedule (exactly-once across recovery). Recovery shares
//! the migration machinery — checkpointed state comes back through the
//! same install path, re-homing goes through the routing table — so these
//! tests are also the proof of the paper's integrative thesis extended to
//! fault tolerance.

use albic::engine::checkpoint::CheckpointMode;
use albic::engine::fault::{FaultInjector, FaultPlan};
use albic::engine::operator::{Counting, Identity};
use albic::engine::tuple::{Tuple, Value};
use albic::engine::{Migration, PeriodRecord, ReconfigMode, ReconfigPlan, Runtime, RuntimeConfig};
use albic::job::{Job, JobBuilder, Policy};
use albic::types::{KeyGroupId, NodeId};

const KEYS: u64 = 24;
const PERIODS: u64 = 5;
const NODES: usize = 4;

/// Deterministic skewed per-key tuple counts for one period.
fn tuples_of(key: u64, period: u64) -> u64 {
    2 + (key * 5 + period * 3) % 11
}

/// Checkpoint mode the suite runs under: `ALBIC_TEST_CHECKPOINT_MODE=
/// incremental` switches every `run_cfg`-based scenario to the
/// incremental store (CI runs the suite once per mode — the exactly-once
/// guarantees must hold identically in both).
fn ambient_mode() -> CheckpointMode {
    match std::env::var("ALBIC_TEST_CHECKPOINT_MODE").as_deref() {
        Ok("incremental") => CheckpointMode::Incremental,
        _ => CheckpointMode::Full,
    }
}

/// A fresh per-test spill directory under the system temp dir.
fn spill_tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("albic-fi-spill-{}-{tag}", std::process::id()))
}

/// Run the standard 4-worker pipeline for `periods` periods under the
/// given fault plan, with `tuples(key, period)` describing the injection
/// schedule and `configure` customizing the job (checkpoint interval,
/// mode, spill tier, ...); returns the per-group final counter states and
/// the metric history.
fn run_cfg(
    plan: FaultPlan,
    periods: u64,
    tuples: impl Fn(u64, u64) -> u64,
    configure: impl FnOnce(JobBuilder) -> JobBuilder,
) -> (Vec<u64>, Vec<PeriodRecord>) {
    let base = Job::builder()
        .source("events", 8, Identity)
        .operator("count", 8, Counting)
        .edge("events", "count")
        .nodes(NODES)
        .checkpoint_interval(1)
        .checkpoint_mode(ambient_mode())
        .policy(Policy::noop());
    let mut job = configure(base).build_threaded().expect("valid job spec");
    let mut faults = FaultInjector::new(plan);
    for p in 0..periods {
        let killed = faults.advance(job.engine_mut());
        for v in &killed {
            assert!(job.cluster().get(*v).is_some(), "victim existed pre-step");
        }
        for k in 0..KEYS {
            let n = tuples(k, p);
            job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
            );
        }
        let report = job.step();
        assert_eq!(
            report.recovery.failed.len(),
            killed.len(),
            "period {p}: every scripted kill must be recovered in its step"
        );
        assert!(report.apply.failed.is_empty());
    }
    job.settle();
    let counts = final_counts(job.engine());
    let history = job.history().to_vec();
    job.shutdown();
    (counts, history)
}

/// [`run_cfg`] with the default schedule and configuration.
fn run(plan: FaultPlan) -> (Vec<u64>, Vec<PeriodRecord>) {
    run_cfg(plan, PERIODS, tuples_of, |b| b)
}

/// The per-group u64 counter states (0 for stateless/untouched groups).
fn final_counts(rt: &Runtime) -> Vec<u64> {
    let cnt = rt.topology().operator_by_name("count").unwrap();
    (0..rt.topology().num_key_groups())
        .map(|g| {
            let kg = KeyGroupId::new(g);
            if rt.topology().operator_of_group(kg) != cnt {
                return 0;
            }
            rt.probe_state(kg)
                .map(|b| {
                    let mut arr = [0u8; 8];
                    arr.copy_from_slice(&b[..8]);
                    u64::from_le_bytes(arr)
                })
                .unwrap_or(0)
        })
        .collect()
}

#[test]
fn scripted_kill_of_one_of_four_workers_is_exactly_once() {
    let (oracle, oracle_history) = run(FaultPlan::new());
    let (counts, history) = run(FaultPlan::new().kill(2, NodeId::new(1)));

    // No key group lost, counter states bit-equal to the fault-free run.
    assert_eq!(counts, oracle, "recovered states diverge from the oracle");
    let total: u64 = (0..PERIODS)
        .flat_map(|p| (0..KEYS).map(move |k| tuples_of(k, p)))
        .sum();
    assert_eq!(counts.iter().sum::<u64>(), total, "arithmetic ground truth");

    // Nothing was dropped on the way — recovery, not loss.
    for rec in &history {
        assert_eq!(rec.dropped_tuples, 0.0, "period {}", rec.period);
    }
    // Recovery accounting is surfaced in the period the kill hit.
    let rec = &history[2];
    assert_eq!(rec.failed_nodes, 1);
    assert!(rec.groups_restored > 0, "the victim hosted groups");
    assert!(
        rec.tuples_replayed > 0.0,
        "the post-checkpoint delta was replayed"
    );
    assert!(rec.recovery_secs > 0.0);
    assert_eq!(rec.num_nodes, NODES - 1, "the corpse left the cluster");
    // Healthy periods carry zeroed recovery accounting.
    assert_eq!(history[1].failed_nodes, 0);
    assert_eq!(history[1].tuples_replayed, 0.0);
    for rec in &oracle_history {
        assert_eq!((rec.failed_nodes, rec.groups_restored), (0, 0));
    }
}

#[test]
fn kill_with_tuples_in_flight_is_exactly_once() {
    // The scripted injector kills at step boundaries; this variant kills
    // *after* injection, while the period's tuples are still queued in
    // worker channels — the batches parked in the victim's inbox die with
    // it and must come back via the replay log.
    let (oracle, _) = run(FaultPlan::new());
    let mut job = Job::builder()
        .source("events", 8, Identity)
        .operator("count", 8, Counting)
        .edge("events", "count")
        .nodes(NODES)
        .checkpoint_interval(1)
        .checkpoint_mode(ambient_mode())
        .policy(Policy::noop())
        .build_threaded()
        .expect("valid job spec");
    for p in 0..PERIODS {
        for k in 0..KEYS {
            let n = tuples_of(k, p);
            job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
            );
        }
        if p == 2 {
            assert!(job.engine_mut().inject_fault(NodeId::new(2)));
        }
        let report = job.step();
        if p == 2 {
            assert_eq!(report.recovery.failed, vec![NodeId::new(2)]);
            assert!(report.recovery.tuples_replayed > 0);
        }
    }
    job.settle();
    let counts = final_counts(job.engine());
    assert_eq!(counts, oracle, "in-flight tuples were lost or doubled");
    assert_eq!(job.cluster().len(), NODES - 1);
    job.shutdown();
}

#[test]
fn simultaneous_double_kill_is_exactly_once() {
    let (oracle, _) = run(FaultPlan::new());
    let (counts, history) = run(FaultPlan::new()
        .kill(1, NodeId::new(0))
        .kill(1, NodeId::new(3)));
    assert_eq!(counts, oracle);
    assert_eq!(history[1].failed_nodes, 2);
    assert_eq!(history.last().unwrap().num_nodes, NODES - 2);
}

#[test]
fn second_kill_after_recovery_rehits_the_recovered_groups() {
    // The second victim hosts groups the first recovery re-homed onto it
    // (round-robin over sorted survivors puts node 1's lost groups on
    // nodes 0 and 2) — recovering already-recovered state must still be
    // exactly-once.
    let (oracle, _) = run(FaultPlan::new());
    let (counts, history) = run(FaultPlan::new()
        .kill(1, NodeId::new(1))
        .kill(2, NodeId::new(2)));
    assert_eq!(counts, oracle, "re-recovered states diverge from oracle");
    assert_eq!(history[1].failed_nodes, 1);
    assert_eq!(history[2].failed_nodes, 1);
    assert_eq!(history.last().unwrap().num_nodes, NODES - 2);
    for rec in &history {
        assert_eq!(rec.dropped_tuples, 0.0, "period {}", rec.period);
    }
}

#[test]
fn kill_before_the_first_checkpoint_replays_from_the_start() {
    // A fault at step 0 hits before any checkpoint exists: recovery rolls
    // back to the implicit empty initial checkpoint and replays the whole
    // log — still exactly-once.
    let (oracle, _) = run(FaultPlan::new());
    let (counts, history) = run(FaultPlan::new().kill(0, NodeId::new(1)));
    assert_eq!(counts, oracle);
    assert_eq!(history[0].failed_nodes, 1);
}

#[test]
fn concurrent_producers_racing_a_kill_lose_nothing() {
    // Producer threads stream through cloned injectors while a worker is
    // killed and recovered underneath them. The injection fence makes
    // each producer call atomic w.r.t. the rollback — a tuple is either
    // fully pre-rollback (logged, rolled back, replayed: counted once)
    // or fully post-recovery (counted once) — so the final counter total
    // must equal everything produced, exactly once.
    const PRODUCERS: i64 = 3;
    const PER_PRODUCER: i64 = 400;
    let mut job = Job::builder()
        .source("events", 8, Identity)
        .operator("count", 8, Counting)
        .edge("events", "count")
        .nodes(3)
        .checkpoint_interval(1)
        .checkpoint_mode(ambient_mode())
        .policy(Policy::noop())
        .build_threaded()
        .expect("valid job spec");
    let handles: Vec<_> = (0..PRODUCERS)
        .map(|t| {
            let inj = job.injector("events");
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    inj.inject([Tuple::keyed(
                        &((t * PER_PRODUCER + i) % 16),
                        Value::Int(i),
                        i as u64,
                    )]);
                }
            })
        })
        .collect();
    // Kill a worker while the producers are mid-stream, then recover.
    std::thread::sleep(std::time::Duration::from_millis(2));
    assert!(job.engine_mut().inject_fault(NodeId::new(1)));
    let report = job.step();
    assert_eq!(report.recovery.failed, vec![NodeId::new(1)]);
    for h in handles {
        h.join().unwrap();
    }
    job.settle();
    let counts = final_counts(job.engine());
    assert_eq!(
        counts.iter().sum::<u64>(),
        (PRODUCERS * PER_PRODUCER) as u64,
        "every produced tuple counted exactly once across the recovery"
    );
    job.shutdown();
}

#[test]
fn policies_see_recovery_as_ordinary_reconfiguration_input() {
    // After a kill, a balancing policy keeps planning over the smaller
    // cluster — the post-recovery placement is ordinary statistics, and
    // its plan runs through the same executor recovery used.
    let mut job = Job::builder()
        .source("events", 8, Identity)
        .operator("count", 8, Counting)
        .edge("events", "count")
        .nodes(3)
        .checkpoint_interval(1)
        .checkpoint_mode(ambient_mode())
        .policy(Policy::milp())
        .build_threaded()
        .expect("valid job spec");
    let mut faults = FaultInjector::new(FaultPlan::new().kill(2, NodeId::new(0)));
    for p in 0..4u64 {
        let _ = faults.advance(job.engine_mut());
        for k in 0..KEYS {
            job.inject(
                "events",
                (0..tuples_of(k, p)).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
            );
        }
        let report = job.step();
        assert!(report.apply.failed.is_empty(), "{:?}", report.apply.failed);
    }
    assert_eq!(job.cluster().len(), 2);
    // Every group is routed to a live node and the engine still measures.
    let routing = job.engine().routing_snapshot();
    for (kg, node) in routing.iter() {
        assert!(
            job.cluster().get(node).is_some(),
            "group {kg:?} routed to dead node {node:?}"
        );
    }
    let stats = job.measure();
    assert_eq!(stats.dropped_tuples, 0.0);
    job.shutdown();
}

/// Scripted round of epoch migrations: rotate each group in `groups` to
/// `to`, skipping moves that are already home. Normalization happens here
/// so every apply sees a well-formed plan.
fn rotate_plan(rt: &Runtime, groups: &[u32], to: NodeId) -> ReconfigPlan {
    let routing = rt.routing_snapshot();
    let mut plan = ReconfigPlan::noop();
    for &g in groups {
        let kg = KeyGroupId::new(g);
        if routing.node_of(kg) != to {
            plan.migrations.push(Migration { group: kg, to });
        }
    }
    plan
}

#[test]
fn epoch_migrations_racing_producers_and_a_kill_stay_exactly_once() {
    // The epoch-mode stress scenario: producer threads stream through
    // cloned injectors (which also emit periodic no-op barrier waves, so
    // alignment is continuously exercised), while back-to-back epoch
    // migrations run underneath them and a worker is killed with a wave
    // in flight. Every wave must terminate — each move either installs or
    // aborts cleanly, never hangs — and the final counter total must
    // equal everything produced, exactly once across the recovery.
    const PRODUCERS: i64 = 3;
    const PER_PRODUCER: i64 = 400;
    let victim = NodeId::new(1);
    let mut job = Job::builder()
        .source("events", 8, Identity)
        .operator("count", 8, Counting)
        .edge("events", "count")
        .nodes(3)
        .checkpoint_interval(1)
        .checkpoint_mode(ambient_mode())
        .runtime_config(RuntimeConfig {
            batch_size: 8,
            channel_capacity: 64,
            barrier_interval: 64,
            ..RuntimeConfig::default()
        })
        .reconfig_mode(ReconfigMode::Epoch)
        .policy(Policy::noop())
        .build_threaded()
        .expect("valid job spec");
    let handles: Vec<_> = (0..PRODUCERS)
        .map(|t| {
            let inj = job.injector("events");
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    inj.inject([Tuple::keyed(
                        &((t * PER_PRODUCER + i) % 16),
                        Value::Int(i),
                        i as u64,
                    )]);
                }
            })
        })
        .collect();
    // Back-to-back epoch waves while the producers are mid-stream; no
    // kill yet, so every move must land.
    for round in 0..3u32 {
        let to = NodeId::new(round % 3);
        let plan = rotate_plan(job.engine(), &[2, 7, 11], to);
        let report = job.apply(&plan);
        assert!(
            report.failed.is_empty(),
            "round {round}: healthy epoch wave must not abort: {:?}",
            report.failed
        );
    }
    // Kill a worker, then immediately launch another wave against the
    // corpse — one move targets the dead node outright. The wave must
    // abort cleanly per move (no hang, no ghost state), not stall on an
    // alignment that can never complete.
    assert!(job.engine_mut().inject_fault(victim));
    let plan = rotate_plan(job.engine(), &[2, 7, 11], victim);
    let report = job.apply(&plan);
    assert_eq!(
        report.migrations.len() + report.failed.len(),
        plan.migrations.len(),
        "every move of the racing wave terminated one way or the other"
    );
    let report = job.step();
    assert_eq!(report.recovery.failed, vec![victim]);
    for h in handles {
        h.join().unwrap();
    }
    // The epoch executor works again on the recovered two-node cluster.
    let plan = rotate_plan(job.engine(), &[2, 7, 11], NodeId::new(2));
    let report = job.apply(&plan);
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    job.settle();
    let counts = final_counts(job.engine());
    assert_eq!(
        counts.iter().sum::<u64>(),
        (PRODUCERS * PER_PRODUCER) as u64,
        "every produced tuple counted exactly once across kill + waves"
    );
    let stats = job.measure();
    assert_eq!(stats.dropped_tuples, 0.0);
    job.shutdown();
}

#[test]
fn recovery_at_interval_four_keeps_stats_measurement_exact() {
    // Regression (stats exactness at checkpoint_interval > 1): replay-log
    // entries are tagged with the period they were measured in, so a
    // recovery at interval 4 re-injects prior-period entries *unmeasured*
    // (their statistics rewind with the checkpoint) and only the failed
    // period's own tail counts. Before the fix, every replayed tuple was
    // re-measured into the faulted period, inflating its load signals.
    let drive = |plan: FaultPlan| -> (Vec<u64>, Vec<f64>, Vec<PeriodRecord>) {
        let mut job = Job::builder()
            .source("events", 8, Identity)
            .operator("count", 8, Counting)
            .edge("events", "count")
            .nodes(NODES)
            .checkpoint_interval(4)
            .checkpoint_mode(ambient_mode())
            .policy(Policy::noop())
            .build_threaded()
            .expect("valid job spec");
        let mut faults = FaultInjector::new(plan);
        let mut totals = Vec::new();
        for p in 0..PERIODS {
            let _ = faults.advance(job.engine_mut());
            for k in 0..KEYS {
                job.inject(
                    "events",
                    (0..tuples_of(k, p)).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
                );
            }
            let report = job.step();
            totals.push(report.stats.total_tuples);
        }
        job.settle();
        let counts = final_counts(job.engine());
        let history = job.history().to_vec();
        job.shutdown();
        (counts, totals, history)
    };
    let (oracle_counts, oracle_totals, _) = drive(FaultPlan::new());
    // Step 2 is two periods past the last (implicit, empty) checkpoint:
    // recovery replays periods 0-1 unmeasured and period 2 measured.
    let (counts, totals, history) = drive(FaultPlan::new().kill(2, NodeId::new(1)));
    assert_eq!(counts, oracle_counts, "states diverge from the oracle");
    assert_eq!(
        totals, oracle_totals,
        "replayed prior-period work leaked into the measured statistics"
    );
    for rec in &history {
        assert_eq!(rec.dropped_tuples, 0.0, "period {}", rec.period);
    }
    assert_eq!(history[2].failed_nodes, 1);
}

#[test]
fn log_overflow_forces_an_early_checkpoint_instead_of_truncating() {
    // Regression (replay-log overflow): each period injects ~170 tuples
    // against a soft capacity of 100, and the scheduled capture is 8
    // periods away — every boundary must force an early capture (clearing
    // the log) instead of truncating, so a kill still recovers
    // exactly-once with nothing dropped.
    let cfg = |b: JobBuilder| b.checkpoint_interval(8).replay_log_capacity(100);
    let (oracle, _) = run_cfg(FaultPlan::new(), PERIODS, tuples_of, cfg);
    let (counts, history) = run_cfg(
        FaultPlan::new().kill(3, NodeId::new(1)),
        PERIODS,
        tuples_of,
        cfg,
    );
    assert_eq!(counts, oracle, "overflow recovery diverges from oracle");
    assert!(
        history
            .iter()
            .any(|r| (r.period + 1) % 8 != 0 && r.checkpoint_bytes > 0),
        "no off-schedule capture despite a continuously overflowing log"
    );
    for rec in &history {
        assert_eq!(rec.dropped_tuples, 0.0, "period {}", rec.period);
    }
}

#[test]
fn kill_after_compaction_restores_base_plus_deltas_exactly_once() {
    // Incremental mode at interval 1: the first capture is full, the next
    // ones are delta layers, and the layer stack compacts into the base
    // every DEFAULT_MAX_DELTA_LAYERS captures — a kill at step 6 restores
    // from a base that has absorbed at least one compaction plus the
    // layers on top of it.
    let cfg = |b: JobBuilder| b.checkpoint_mode(CheckpointMode::Incremental);
    let (oracle, _) = run_cfg(FaultPlan::new(), 7, tuples_of, cfg);
    let (counts, history) = run_cfg(FaultPlan::new().kill(6, NodeId::new(2)), 7, tuples_of, cfg);
    assert_eq!(counts, oracle, "post-compaction restore diverges");
    assert_eq!(history[6].failed_nodes, 1);
    // Every period captured (interval 1) and captures carry cost.
    assert!(history.iter().all(|r| r.checkpoint_bytes > 0));
}

#[test]
fn kill_with_spilled_groups_faults_cold_state_back_in() {
    // Warm every group in period 0, then starve most of them: with
    // cold_after = 2 the quiet groups spill to disk well before the kill
    // at step 5. Recovery ships only the hot set eagerly — the spilled
    // groups fault back in from their files on first access (the final
    // probe), and the result must still match the fault-free oracle.
    let skew = |k: u64, p: u64| {
        if p == 0 || k < 4 {
            tuples_of(k, p)
        } else {
            0
        }
    };
    let (oracle, _) = run_cfg(FaultPlan::new(), 6, skew, |b| b);
    let dir = spill_tmp("kill-spilled");
    let _ = std::fs::remove_dir_all(&dir);
    let (counts, history) = run_cfg(FaultPlan::new().kill(5, NodeId::new(1)), 6, skew, |b| {
        b.checkpoint_mode(CheckpointMode::Incremental)
            .spill_dir(dir.clone())
            .cold_after(2)
    });
    assert_eq!(counts, oracle, "spilled state lost or doubled");
    assert!(
        history[..5].iter().any(|r| r.spilled_groups > 0),
        "no group ever went cold before the kill"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
