//! Differential tests: the columnar chunk plane against the row-batch
//! oracle. The two data planes are *observationally equivalent* — same
//! final counter states (bit-equal), same final routing, and bit-identical
//! per-period statistics under quiesced reconfiguration — even when
//! migrations land mid-batch with tuples still in flight. The row plane
//! moves one dynamically-typed tuple per hop and is trivially correct; the
//! chunk plane re-buckets whole columns per virtual call, so any
//! divergence here is a vectorization bug. The property tests randomize
//! the knobs that bend the plane around a batch boundary: batch size,
//! channel capacity, and the migration schedule itself.

use albic::engine::chunk::ChunkSorter;
use albic::engine::operator::{Counting, Identity};
use albic::engine::tuple::{Tuple, Value};
use albic::engine::{
    DataPlane, Migration, PeriodRecord, ReconfigMode, ReconfigPlan, Runtime, RuntimeConfig,
    StreamChunk,
};
use albic::job::{Job, Policy};
use albic::types::{KeyGroupId, NodeId};
use proptest::prelude::*;

const KEYS: u64 = 24;
const NODES: usize = 3;

/// Deterministic skewed per-key tuple counts for one period.
fn tuples_of(key: u64, period: u64) -> u64 {
    1 + (key * 5 + period * 7) % 9
}

/// Normalize one period's scripted `(group, node)` moves into a
/// well-formed plan (no self-moves, no duplicate groups) — both planes
/// must see the *same* plan.
fn plan_of(rt: &Runtime, moves: &[(u32, u32)]) -> ReconfigPlan {
    let routing = rt.routing_snapshot();
    let total = rt.topology().num_key_groups();
    let mut seen = Vec::new();
    let mut plan = ReconfigPlan::noop();
    for &(g, n) in moves {
        let kg = KeyGroupId::new(g % total);
        let to = NodeId::new(n % NODES as u32);
        if seen.contains(&kg) || routing.node_of(kg) == to {
            continue;
        }
        seen.push(kg);
        plan.migrations.push(Migration { group: kg, to });
    }
    plan
}

/// One full run on `plane`: per period inject the deterministic workload,
/// apply that period's scripted migrations **without settling first** (the
/// plan lands with chunks still in flight), then close the period.
fn run_plane(
    plane: DataPlane,
    mode: ReconfigMode,
    batch: usize,
    capacity: usize,
    barrier_interval: usize,
    schedule: &[Vec<(u32, u32)>],
) -> (Vec<u64>, Vec<NodeId>, Vec<PeriodRecord>) {
    let mut job = Job::builder()
        .source("events", 8, Identity)
        .operator("count", 8, Counting)
        .edge("events", "count")
        .nodes(NODES)
        .runtime_config(RuntimeConfig {
            batch_size: batch,
            channel_capacity: capacity,
            barrier_interval,
            data_plane: plane,
            ..RuntimeConfig::default()
        })
        .reconfig_mode(mode)
        .policy(Policy::noop())
        .build_threaded()
        .expect("valid job spec");
    for (p, moves) in schedule.iter().enumerate() {
        for k in 0..KEYS {
            let n = tuples_of(k, p as u64);
            job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p as u64)),
            );
        }
        // Mid-batch landing: no settle between inject and apply, so the
        // reconfiguration overtakes tuples still queued on the data plane.
        let plan = plan_of(job.engine(), moves);
        let report = job.apply(&plan);
        assert!(
            report.failed.is_empty(),
            "period {p}: no kills, every move must succeed: {:?}",
            report.failed
        );
        let step = job.step();
        assert!(step.apply.failed.is_empty());
    }
    job.settle();
    let counts = final_counts(job.engine());
    let assignment = job.engine().routing_snapshot().assignment().to_vec();
    let history = job.history().to_vec();
    job.shutdown();
    (counts, assignment, history)
}

/// The per-group u64 counter states (0 for stateless/untouched groups).
fn final_counts(rt: &Runtime) -> Vec<u64> {
    let cnt = rt.topology().operator_by_name("count").unwrap();
    (0..rt.topology().num_key_groups())
        .map(|g| {
            let kg = KeyGroupId::new(g);
            if rt.topology().operator_of_group(kg) != cnt {
                return 0;
            }
            rt.probe_state(kg)
                .map(|b| {
                    let mut arr = [0u8; 8];
                    arr.copy_from_slice(&b[..8]);
                    u64::from_le_bytes(arr)
                })
                .unwrap_or(0)
        })
        .collect()
}

/// Every `PeriodRecord` field as exact bit patterns, except the two
/// wall-clock timings (`migration_pause_secs`, `recovery_secs`) which are
/// machine-dependent by nature. Everything else is a sum of exact
/// integer-valued counters, so for migration-free schedules the planes
/// must agree *bit for bit*.
fn record_bits(r: &PeriodRecord) -> [u64; 13] {
    [
        r.period,
        r.load_distance.to_bits(),
        r.mean_load.to_bits(),
        r.total_system_load.to_bits(),
        r.collocation_factor.to_bits(),
        r.migrations as u64,
        r.migration_cost.to_bits(),
        r.num_nodes as u64,
        r.marked_nodes as u64,
        r.dropped_tuples.to_bits(),
        r.failed_nodes as u64,
        r.groups_restored as u64,
        r.tuples_replayed.to_bits(),
    ]
}

/// The timing-independent counter subset (the same set `tests/epoch.rs`
/// compares across executors). When a plan lands with tuples in flight,
/// the local-vs-crossed classification and period attribution of those
/// tuples race thread scheduling *within either plane* — the load and
/// collocation aggregates are then not run-to-run reproducible, so a
/// plane-vs-plane comparison of them would be flaky by construction.
fn counter_bits(r: &PeriodRecord) -> [u64; 9] {
    [
        r.period,
        r.migrations as u64,
        r.migration_cost.to_bits(),
        r.num_nodes as u64,
        r.marked_nodes as u64,
        r.dropped_tuples.to_bits(),
        r.failed_nodes as u64,
        r.groups_restored as u64,
        r.tuples_replayed.to_bits(),
    ]
}

/// Assert observational equivalence of one quiesced schedule under the
/// two data planes. For migration-free schedules every statistics field
/// must be bit-identical; with mid-stream plans the deterministic counter
/// subset must be.
fn assert_columnar_matches_row(batch: usize, capacity: usize, schedule: &[Vec<(u32, u32)>]) {
    let (row_counts, row_routing, row_history) = run_plane(
        DataPlane::Row,
        ReconfigMode::Quiesce,
        batch,
        capacity,
        0,
        schedule,
    );
    let (counts, routing, history) = run_plane(
        DataPlane::Columnar,
        ReconfigMode::Quiesce,
        batch,
        capacity,
        0,
        schedule,
    );
    assert_eq!(
        counts, row_counts,
        "final counter states diverge from the row-batch oracle"
    );
    assert_eq!(routing, row_routing, "final routing diverges");
    let migration_free = schedule.iter().all(|moves| moves.is_empty());
    if migration_free {
        assert_eq!(
            history.iter().map(record_bits).collect::<Vec<_>>(),
            row_history.iter().map(record_bits).collect::<Vec<_>>(),
            "per-period statistics diverge bit-wise from the row-batch oracle"
        );
    } else {
        assert_eq!(
            history.iter().map(counter_bits).collect::<Vec<_>>(),
            row_history.iter().map(counter_bits).collect::<Vec<_>>(),
            "per-period counters diverge from the row-batch oracle"
        );
    }
    // Arithmetic ground truth: exactly-once end to end.
    let total: u64 = (0..schedule.len() as u64)
        .flat_map(|p| (0..KEYS).map(move |k| tuples_of(k, p)))
        .sum();
    assert_eq!(counts.iter().sum::<u64>(), total);
    for rec in &history {
        assert_eq!(rec.dropped_tuples, 0.0, "period {}", rec.period);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Quiesced reconfiguration: the chunk plane is bit-identical to the
    /// row oracle over randomized batch sizes, channel capacities, and
    /// mid-stream migration schedules.
    #[test]
    fn columnar_plane_matches_row_oracle_under_quiesce(
        batch in 1usize..=48,
        capacity in 8usize..=128,
        schedule in proptest::collection::vec(
            proptest::collection::vec((0u32..16, 0u32..NODES as u32), 0..3),
            2..4,
        ),
    ) {
        assert_columnar_matches_row(batch, capacity, &schedule);
    }

    /// Steady state (no plans in flight): *every* per-period statistics
    /// field — load distance, mean load, system load, collocation — is
    /// bit-identical between the planes, over randomized batch sizes and
    /// channel capacities.
    #[test]
    fn steady_state_statistics_are_bit_identical(
        batch in 1usize..=48,
        capacity in 8usize..=128,
        periods in 2usize..=4,
    ) {
        let schedule = vec![vec![]; periods];
        assert_columnar_matches_row(batch, capacity, &schedule);
    }

    /// Epoch-aligned reconfiguration: same final counter states, routing,
    /// and zero drops on both planes. (Per-period *load* stats are not
    /// compared here: epoch mode never stops unrelated edges, so the
    /// crossing classification of in-flight tuples is timing-dependent on
    /// both planes — the quiesce property above pins the stats.)
    #[test]
    fn columnar_plane_matches_row_oracle_under_epoch(
        batch in 1usize..=48,
        capacity in 8usize..=128,
        barrier in prop_oneof![Just(0usize), 64usize..512],
        schedule in proptest::collection::vec(
            proptest::collection::vec((0u32..16, 0u32..NODES as u32), 0..3),
            2..4,
        ),
    ) {
        let (row_counts, row_routing, row_history) = run_plane(
            DataPlane::Row, ReconfigMode::Epoch, batch, capacity, barrier, &schedule);
        let (counts, routing, history) = run_plane(
            DataPlane::Columnar, ReconfigMode::Epoch, batch, capacity, barrier, &schedule);
        prop_assert_eq!(counts, row_counts);
        prop_assert_eq!(routing, row_routing);
        for rec in history.iter().chain(row_history.iter()) {
            prop_assert_eq!(rec.dropped_tuples, 0.0, "period {}", rec.period);
        }
    }

    /// The chunk codec round-trips arbitrary mixed-variant chunks
    /// bit-exactly, including the visibility bitmap (hidden rows survive
    /// the trip still hidden).
    #[test]
    fn chunk_codec_roundtrips_arbitrary_chunks(
        rows in proptest::collection::vec(
            (0u64..64, 0u64..1000, 0usize..5, any::<i64>(), -1e6f64..1e6, "\\PC{0,12}"),
            0..48,
        ),
        hide in proptest::collection::vec(any::<bool>(), 0..48),
    ) {
        use albic::engine::codec::{Reader, Writer};
        let mut chunk = StreamChunk::new();
        for &(key, ts, variant, i, f, ref s) in &rows {
            let value = match variant {
                0 => Value::Null,
                1 => Value::Int(i),
                2 => Value::Float(f),
                3 => Value::Str(s.clone()),
                _ => Value::List(vec![Value::Int(i), Value::Str(s.clone())]),
            };
            chunk.push(key, value, ts);
        }
        for (i, &h) in hide.iter().enumerate() {
            if h && i < chunk.len() {
                chunk.hide(i);
            }
        }
        let mut w = Writer::new();
        chunk.encode(&mut w);
        let bytes = w.into_bytes();
        let back = StreamChunk::decode(&mut Reader::new(&bytes)).expect("decode");
        prop_assert_eq!(&back, &chunk);
        // And the visible-tuple view agrees (masked rows stay masked).
        prop_assert_eq!(back.to_tuples(), chunk.to_tuples());
        prop_assert_eq!(back.visible_len(), chunk.visible_len());
    }

    /// Stable counting sort: bucketing any chunk by group preserves
    /// per-group row order and loses nothing.
    #[test]
    fn sorter_is_stable_and_lossless(
        rows in proptest::collection::vec((0u64..16, 0u32..8), 0..64),
    ) {
        let mut chunk = StreamChunk::new();
        for (i, &(key, group)) in rows.iter().enumerate() {
            chunk.push(key, Value::Int(i as i64), i as u64);
            chunk.set_group(i, group);
        }
        let mut sorted = StreamChunk::new();
        if ChunkSorter::new().sort_into(&chunk, 8, &mut sorted) {
            for g in 0..8u32 {
                let per_group = |c: &StreamChunk| -> Vec<(u64, u64)> {
                    (0..c.len())
                        .filter(|&i| c.group_at(i) == g)
                        .map(|i| (c.key_at(i), c.ts_at(i)))
                        .collect()
                };
                prop_assert_eq!(per_group(&sorted), per_group(&chunk), "group {}", g);
            }
            prop_assert_eq!(sorted.len(), chunk.len());
        } else {
            // Already sorted: the sorter must have left the output alone.
            prop_assert!(chunk.groups_sorted());
        }
    }
}

/// Deterministic pins of the codec corner cases the wire path produces.
#[test]
fn chunk_codec_pins_empty_allnull_and_masked() {
    use albic::engine::codec::{Reader, Writer};

    // Empty chunk.
    let empty = StreamChunk::new();
    let mut w = Writer::new();
    empty.encode(&mut w);
    let back = StreamChunk::decode(&mut Reader::new(&w.into_bytes())).unwrap();
    assert!(back.is_empty());

    // All-Null value column.
    let mut nulls = StreamChunk::new();
    for i in 0..5u64 {
        nulls.push(i, Value::Null, i);
    }
    let mut w = Writer::new();
    nulls.encode(&mut w);
    let back = StreamChunk::decode(&mut Reader::new(&w.into_bytes())).unwrap();
    assert_eq!(back.to_tuples(), nulls.to_tuples());

    // Visibility-masked rows survive the trip still masked.
    let mut masked = StreamChunk::new();
    for i in 0..4u64 {
        masked.push(i, Value::Int(i as i64), i);
    }
    masked.hide(1);
    masked.hide(3);
    let mut w = Writer::new();
    masked.encode(&mut w);
    let back = StreamChunk::decode(&mut Reader::new(&w.into_bytes())).unwrap();
    assert_eq!(back, masked);
    assert_eq!(back.visible_len(), 2);
    assert_eq!(
        back.to_tuples()
            .iter()
            .map(|t| t.value.as_int().unwrap())
            .collect::<Vec<_>>(),
        vec![0, 2]
    );
}

/// Deterministic pin of the core scenario: tiny batches, a small channel,
/// and back-to-back multi-move periods — the plan always lands mid-chunk.
#[test]
fn mid_chunk_migration_matches_row_oracle() {
    let schedule = vec![
        vec![(3, 1), (9, 2), (14, 0)],
        vec![(3, 2), (6, 1)],
        vec![(9, 0), (14, 2), (1, 1)],
    ];
    assert_columnar_matches_row(4, 16, &schedule);
}
