//! Regression tests pinning the *qualitative shapes* of the paper's key
//! results, so future changes to the solver, engine or workloads cannot
//! silently break the reproduction. These are the fast variants of the
//! claims EXPERIMENTS.md records for the full runs.
//!
//! Every driver is assembled with the fluent `Job` builder; the
//! Algorithm-1 loop it owns is `albic_core::controller::Controller`.

use albic::core::allocator::NodeSet;
use albic::core::baselines::PoTC;
use albic::job::{Job, Policy};
use albic::milp::{AllocationProblem, Budget, GroupSpec, MigrationBudget};
use albic::workloads::wikipedia::WikiJob1Workload;
use albic::workloads::{SyntheticConfig, SyntheticWorkload};

fn one_round_distance(policy: Policy, varies: f64, nodes: usize) -> f64 {
    let cfg = SyntheticConfig {
        varies,
        seed: 0x7E57 + varies as u64,
        ..SyntheticConfig::cluster(nodes)
    };
    let mut job = Job::builder()
        .nodes(nodes)
        .policy(policy)
        .build_simulated(SyntheticWorkload::new(cfg))
        .expect("valid job spec");
    job.run(1).last().unwrap().load_distance
}

/// Figs 2-4 shape: the MILP beats Flux decisively under the same
/// migration budget on the synthetic scenario.
#[test]
fn shape_milp_beats_flux_figs_2_4() {
    for varies in [30.0, 60.0, 90.0] {
        let milp_d = one_round_distance(
            Policy::milp().with_budget(MigrationBudget::Count(20)),
            varies,
            20,
        );
        let flux_d = one_round_distance(Policy::flux(20), varies, 20);
        assert!(
            milp_d < flux_d * 0.7,
            "varies={varies}: MILP {milp_d:.2} should clearly beat Flux {flux_d:.2}"
        );
    }
}

/// Fig 6 shape: on Real Job 1 the MILP's steady-state distance beats the
/// PoTC evaluator's. PoTC observes every period's statistics through the
/// per-round tick hook, before its own (hypothetical) placement.
#[test]
fn shape_milp_beats_potc_fig6() {
    let workers = 20usize;
    let mut job = Job::builder()
        .nodes(workers)
        .policy(Policy::milp().with_budget(MigrationBudget::Count(13)))
        .build_simulated(WikiJob1Workload::new(70_000.0, 100, 0xF16))
        .expect("valid job spec");
    let potc = PoTC::new(1);
    let mut potc_sum = 0.0;
    let mut milp_sum = 0.0;
    let _ = job.run_with(12, |t| {
        if t.period >= 4 {
            let ns = NodeSet::from_cluster(t.cluster);
            potc_sum += potc.evaluate(&t.report.stats, &ns).load_distance;
            milp_sum += t.record.load_distance;
        }
    });
    assert!(
        milp_sum < potc_sum,
        "MILP ({milp_sum:.1}) must beat PoTC ({potc_sum:.1}) on cumulative distance"
    );
}

/// Fig 9 shape: the unrestricted MILP moves far more state per round than
/// the 13-group budget on a drifting workload.
#[test]
fn shape_unrestricted_migrates_more_state_fig9() {
    let run = |budget: MigrationBudget| -> f64 {
        let mut job = Job::builder()
            .nodes(20)
            .policy(Policy::milp().with_budget(budget))
            .build_simulated(WikiJob1Workload::new(70_000.0, 100, 0xF19))
            .expect("valid job spec");
        let _ = job.run(8);
        job.report().total_pause_secs
    };
    let unrestricted = run(MigrationBudget::Unlimited);
    let budgeted = run(MigrationBudget::Count(13));
    assert!(
        unrestricted > budgeted * 3.0,
        "unrestricted pause {unrestricted:.1}s should dwarf budgeted {budgeted:.1}s"
    );
}

/// Lemma 2 shape: with enough budget over several rounds, the MILP fully
/// drains nodes marked for removal — purely by minimizing `d`.
#[test]
fn shape_lemma2_marked_nodes_drain_completely() {
    let groups = 12usize;
    let p = AllocationProblem {
        num_nodes: 4,
        killed: vec![false, false, true, true],
        capacity: vec![1.0; 4],
        groups: (0..groups)
            .map(|g| GroupSpec {
                load: 5.0 + (g % 3) as f64,
                migration_cost: 1.0,
                current_node: g % 4,
            })
            .collect(),
        budget: MigrationBudget::Count(3),
        collocate: vec![],
        pins: vec![],
    };
    // Iterate rounds, feeding each solution back as the current state.
    let mut problem = p;
    for _ in 0..6 {
        let sol = problem.solve(&mut Budget::work(100_000));
        for (g, &node) in sol.assignment.iter().enumerate() {
            problem.groups[g].current_node = node;
        }
        if problem
            .groups
            .iter()
            .all(|g| !problem.killed[g.current_node])
        {
            return; // drained
        }
    }
    let stranded = problem
        .groups
        .iter()
        .filter(|g| problem.killed[g.current_node])
        .count();
    assert_eq!(
        stranded, 0,
        "{stranded} groups still on killed nodes after 6 rounds"
    );
}

/// The simulator is deterministic end to end: identical seeds produce
/// identical histories (bit-for-bit), which is what makes every figure
/// reproducible.
#[test]
fn shape_experiments_are_deterministic() {
    let run = || {
        let cfg = SyntheticConfig {
            varies: 50.0,
            ..SyntheticConfig::cluster(10)
        };
        let mut job = Job::builder()
            .nodes(10)
            .policy(Policy::milp().with_budget(MigrationBudget::Count(10)))
            .build_simulated(SyntheticWorkload::new(cfg))
            .expect("valid job spec");
        job.run(5)
            .iter()
            .map(|r| (r.load_distance.to_bits(), r.migrations))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
