//! Regression tests pinning the *qualitative shapes* of the paper's key
//! results, so future changes to the solver, engine or workloads cannot
//! silently break the reproduction. These are the fast variants of the
//! claims EXPERIMENTS.md records for the full runs.
//!
//! Every driver goes through the Algorithm-1 [`Controller`]; the loops the
//! seed hand-rolled live there now.

use albic::core::allocator::NodeSet;
use albic::core::baselines::PoTC;
use albic::core::framework::AdaptationFramework;
use albic::core::{Controller, MilpBalancer};
use albic::engine::reconfig::ReconfigPolicy;
use albic::engine::{Cluster, CostModel, SimEngine};
use albic::milp::{AllocationProblem, Budget, GroupSpec, MigrationBudget};
use albic::workloads::wikipedia::WikiJob1Workload;
use albic::workloads::{SyntheticConfig, SyntheticWorkload};

fn one_round_distance(policy: &mut dyn ReconfigPolicy, varies: f64, nodes: usize) -> f64 {
    let cfg = SyntheticConfig {
        varies,
        seed: 0x7E57 + varies as u64,
        ..SyntheticConfig::cluster(nodes)
    };
    let mut engine = SimEngine::with_round_robin(
        SyntheticWorkload::new(cfg),
        Cluster::homogeneous(nodes),
        CostModel::default(),
    );
    let history = Controller::new(&mut engine).run(policy, 1);
    history.last().unwrap().load_distance
}

/// Figs 2-4 shape: the MILP beats Flux decisively under the same
/// migration budget on the synthetic scenario.
#[test]
fn shape_milp_beats_flux_figs_2_4() {
    for varies in [30.0, 60.0, 90.0] {
        let mut milp =
            AdaptationFramework::balancing_only(MilpBalancer::new(MigrationBudget::Count(20)));
        let mut flux = AdaptationFramework::balancing_only(albic::core::baselines::Flux::new(20));
        let milp_d = one_round_distance(&mut milp, varies, 20);
        let flux_d = one_round_distance(&mut flux, varies, 20);
        assert!(
            milp_d < flux_d * 0.7,
            "varies={varies}: MILP {milp_d:.2} should clearly beat Flux {flux_d:.2}"
        );
    }
}

/// Fig 6 shape: on Real Job 1 the MILP's steady-state distance beats the
/// PoTC evaluator's. PoTC observes every period's statistics through the
/// controller's observer hook before the MILP's plan is applied.
#[test]
fn shape_milp_beats_potc_fig6() {
    let workers = 20usize;
    let mut engine = SimEngine::with_round_robin(
        WikiJob1Workload::new(70_000.0, 100, 0xF16),
        Cluster::homogeneous(workers),
        CostModel::default(),
    );
    let mut policy =
        AdaptationFramework::balancing_only(MilpBalancer::new(MigrationBudget::Count(13)));
    let potc = PoTC::new(1);
    let mut potc_sum = 0.0;
    let mut milp_sum = 0.0;
    let periods = 12;
    {
        let mut seen = 0usize;
        let mut ctl = Controller::new(&mut engine).with_observer(|stats, cluster| {
            if seen >= 4 {
                let ns = NodeSet::from_cluster(cluster);
                potc_sum += potc.evaluate(stats, &ns).load_distance;
            }
            seen += 1;
        });
        for round in 0..periods {
            ctl.step(&mut policy);
            if round >= 4 {
                milp_sum += ctl.history().last().unwrap().load_distance;
            }
        }
    }
    assert!(
        milp_sum < potc_sum,
        "MILP ({milp_sum:.1}) must beat PoTC ({potc_sum:.1}) on cumulative distance"
    );
}

/// Fig 9 shape: the unrestricted MILP moves far more state per round than
/// the 13-group budget on a drifting workload.
#[test]
fn shape_unrestricted_migrates_more_state_fig9() {
    let run = |budget: MigrationBudget| -> f64 {
        let mut engine = SimEngine::with_round_robin(
            WikiJob1Workload::new(70_000.0, 100, 0xF19),
            Cluster::homogeneous(20),
            CostModel::default(),
        );
        let mut policy = AdaptationFramework::balancing_only(MilpBalancer::new(budget));
        Controller::new(&mut engine)
            .run(&mut policy, 8)
            .iter()
            .map(|r| r.migration_pause_secs)
            .sum()
    };
    let unrestricted = run(MigrationBudget::Unlimited);
    let budgeted = run(MigrationBudget::Count(13));
    assert!(
        unrestricted > budgeted * 3.0,
        "unrestricted pause {unrestricted:.1}s should dwarf budgeted {budgeted:.1}s"
    );
}

/// Lemma 2 shape: with enough budget over several rounds, the MILP fully
/// drains nodes marked for removal — purely by minimizing `d`.
#[test]
fn shape_lemma2_marked_nodes_drain_completely() {
    let groups = 12usize;
    let p = AllocationProblem {
        num_nodes: 4,
        killed: vec![false, false, true, true],
        capacity: vec![1.0; 4],
        groups: (0..groups)
            .map(|g| GroupSpec {
                load: 5.0 + (g % 3) as f64,
                migration_cost: 1.0,
                current_node: g % 4,
            })
            .collect(),
        budget: MigrationBudget::Count(3),
        collocate: vec![],
        pins: vec![],
    };
    // Iterate rounds, feeding each solution back as the current state.
    let mut problem = p;
    for _ in 0..6 {
        let sol = problem.solve(&mut Budget::work(100_000));
        for (g, &node) in sol.assignment.iter().enumerate() {
            problem.groups[g].current_node = node;
        }
        if problem
            .groups
            .iter()
            .all(|g| !problem.killed[g.current_node])
        {
            return; // drained
        }
    }
    let stranded = problem
        .groups
        .iter()
        .filter(|g| problem.killed[g.current_node])
        .count();
    assert_eq!(
        stranded, 0,
        "{stranded} groups still on killed nodes after 6 rounds"
    );
}

/// The simulator is deterministic end to end: identical seeds produce
/// identical histories (bit-for-bit), which is what makes every figure
/// reproducible.
#[test]
fn shape_experiments_are_deterministic() {
    let run = || {
        let cfg = SyntheticConfig {
            varies: 50.0,
            ..SyntheticConfig::cluster(10)
        };
        let mut engine = SimEngine::with_round_robin(
            SyntheticWorkload::new(cfg),
            Cluster::homogeneous(10),
            CostModel::default(),
        );
        let mut policy =
            AdaptationFramework::balancing_only(MilpBalancer::new(MigrationBudget::Count(10)));
        Controller::new(&mut engine)
            .run(&mut policy, 5)
            .iter()
            .map(|r| (r.load_distance.to_bits(), r.migrations))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
