//! Data-plane stress test: concurrent producers inject while a scaling
//! policy adds workers, migrates state, and drains a worker mid-stream.
//!
//! The exactly-once guarantee under reconfiguration is the point: across
//! ≥ 3 reconfigurations (scale-out ×2 with migrations, then a scale-in
//! drain), every injected tuple must be counted exactly once — zero
//! loss, zero duplicate delivery — which the per-key-group counter
//! states prove at the end (any lost tuple lowers a count, any duplicate
//! raises one). The surfaced-drop counter must stay at zero throughout.

use std::sync::Arc;

use albic::engine::reconfig::{ClusterView, ReconfigPlan, ReconfigPolicy};
use albic::engine::tuple::{hash_key, Tuple, Value};
use albic::engine::{Migration, PeriodStats, RuntimeConfig};
use albic::job::{Job, Policy};
use albic::types::NodeId;

use albic::engine::operator::{Counting, Identity};

const PRODUCERS: usize = 3;
const TUPLES_PER_PRODUCER: usize = 12_000;
const KEYS: u64 = 32;

/// A deterministic scaling script driven by the period index:
///
/// * period 1 — scale out (+1 node) and migrate every other key group to
///   the new worker, mid-stream;
/// * period 3 — scale out again and spread a third of the groups there;
/// * period 5 — scale in: mark the first added worker for removal and
///   drain all its groups back to node 0.
///
/// Scripted rather than threshold-driven so the test exercises a known
/// number of reconfigurations regardless of machine speed.
struct ScriptedScaling {
    reconfigs: usize,
}

impl ReconfigPolicy for ScriptedScaling {
    fn name(&self) -> &str {
        "scripted-scaling"
    }

    fn plan(&mut self, stats: &PeriodStats, view: ClusterView<'_>) -> ReconfigPlan {
        let plan = match stats.period.index() {
            1 => {
                let new_id = view.cluster.peek_next_ids(1)[0];
                ReconfigPlan {
                    add_nodes: vec![1.0],
                    migrations: (0..stats.allocation.len())
                        .step_by(2)
                        .map(|g| Migration {
                            group: albic::types::KeyGroupId::new(g as u32),
                            to: new_id,
                        })
                        .collect(),
                    mark_removal: vec![],
                }
            }
            3 => {
                let new_id = view.cluster.peek_next_ids(1)[0];
                ReconfigPlan {
                    add_nodes: vec![1.0],
                    migrations: (0..stats.allocation.len())
                        .skip(1)
                        .step_by(3)
                        .map(|g| Migration {
                            group: albic::types::KeyGroupId::new(g as u32),
                            to: new_id,
                        })
                        .collect(),
                    mark_removal: vec![],
                }
            }
            5 => {
                // Drain the first scaled-out worker (node id 1: the
                // cluster started with node 0).
                let victim = NodeId::new(1);
                ReconfigPlan {
                    migrations: stats
                        .allocation
                        .iter()
                        .enumerate()
                        .filter(|&(_, &n)| n == victim)
                        .map(|(g, _)| Migration {
                            group: albic::types::KeyGroupId::new(g as u32),
                            to: NodeId::new(0),
                        })
                        .collect(),
                    add_nodes: vec![],
                    mark_removal: vec![victim],
                }
            }
            _ => ReconfigPlan::noop(),
        };
        if !plan.is_noop() {
            self.reconfigs += 1;
        }
        plan
    }
}

#[test]
fn concurrent_producers_survive_scaling_and_migration_with_zero_loss() {
    let mut job = Job::builder()
        .source("events", 8, Identity)
        .operator("count", 8, Counting)
        .edge("events", "count")
        .nodes(1)
        .routing_all_on_first()
        .policy(Policy::custom(ScriptedScaling { reconfigs: 0 }))
        .runtime_config(RuntimeConfig {
            batch_size: 32,
            channel_capacity: 64,
            ..RuntimeConfig::default()
        })
        .build_threaded()
        .expect("valid stress job");

    // Producers pace themselves in small chunks so injection overlaps the
    // reconfiguration steps below on any machine speed.
    let barrier = Arc::new(std::sync::Barrier::new(PRODUCERS + 1));
    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let injector = job.injector("events");
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut sent = 0usize;
                while sent < TUPLES_PER_PRODUCER {
                    let chunk = 500.min(TUPLES_PER_PRODUCER - sent);
                    injector.inject((0..chunk).map(|i| {
                        let k = ((sent + i) % KEYS as usize) as u64;
                        Tuple::keyed(
                            &k,
                            Value::Int((p * TUPLES_PER_PRODUCER + sent + i) as i64),
                            0,
                        )
                    }));
                    sent += chunk;
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            })
        })
        .collect();
    barrier.wait();

    // Run the adaptation loop concurrently with the producers: 8 periods
    // covering two scale-outs (with migrations) and one drain.
    let mut reconfig_events = 0usize;
    let mut failed_migrations = 0usize;
    for _ in 0..8 {
        let report = job.step();
        if !report.plan.is_noop() {
            reconfig_events += 1;
        }
        failed_migrations += report.apply.failed.len();
        std::thread::sleep(std::time::Duration::from_millis(15));
    }
    for h in handles {
        h.join().expect("producer thread");
    }
    // Producers are done; settle everything and close the final period.
    let final_stats = job.measure();

    assert!(
        reconfig_events >= 3,
        "the script must have executed >= 3 reconfigurations, saw {reconfig_events}"
    );
    assert_eq!(failed_migrations, 0, "no migration may fail mid-stream");

    // The drained worker's thread is joined and its node released.
    assert!(
        job.cluster().get(NodeId::new(1)).is_none(),
        "scaled-in node 1 must be terminated"
    );
    assert_eq!(job.cluster().len(), 2, "node 0 + second scale-out survive");

    // Zero loss, zero duplicates: every counter group's state equals the
    // number of tuples injected for its keys — a lost tuple lowers a
    // count, a duplicated delivery raises one.
    let topology = job.engine().topology().clone();
    let cnt = topology.operator_by_name("count").unwrap();
    let per_key = PRODUCERS * (TUPLES_PER_PRODUCER / KEYS as usize);
    let mut expected = vec![0u64; topology.num_key_groups() as usize];
    for k in 0..KEYS {
        let kg = topology.group_for_key(cnt, hash_key(&k));
        expected[kg.index()] += per_key as u64;
    }
    for g in 0..topology.num_key_groups() {
        let kg = albic::types::KeyGroupId::new(g);
        if topology.operator_of_group(kg) != cnt || expected[kg.index()] == 0 {
            continue;
        }
        let bytes = job
            .engine()
            .probe_state(kg)
            .unwrap_or_else(|| panic!("counter state for group {g} must exist"));
        let mut arr = [0u8; 8];
        arr.copy_from_slice(&bytes[..8]);
        let counted = u64::from_le_bytes(arr);
        assert_eq!(
            counted,
            expected[kg.index()],
            "group {g}: counted {counted} != injected {} (loss or duplication)",
            expected[kg.index()]
        );
    }

    // Nothing was silently (or even noisily) dropped anywhere.
    assert_eq!(final_stats.dropped_tuples, 0.0);
    let total_dropped: f64 = job.history().iter().map(|r| r.dropped_tuples).sum();
    assert_eq!(
        total_dropped, 0.0,
        "no tuple may be dropped in a healthy run"
    );

    // Sanity: the run really processed the full volume.
    let total_injected = (PRODUCERS * TUPLES_PER_PRODUCER) as f64;
    let total_processed: f64 = job
        .history()
        .iter()
        .map(|r| r.total_system_load)
        .sum::<f64>();
    assert!(total_processed > 0.0);
    let counted: u64 = expected.iter().sum();
    assert_eq!(counted as f64, total_injected);

    job.shutdown();
}
