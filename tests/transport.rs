//! Networked-transport integration: jobs whose workers are real child
//! processes connected over TCP or Unix-domain sockets must behave
//! exactly like the in-process substrate — including state migration
//! over the wire, session resumption after a dropped socket (the process
//! survives, so nothing may be lost or recovered), exactly-once recovery
//! from a SIGKILLed worker process even under a generous reconnect
//! policy, LZ4-compressed state blobs, and token-authenticated workers
//! that join a controller they were not spawned by.

use std::process::{Child, Command, Stdio};
use std::time::Duration;

use albic::engine::fault::{FaultInjector, FaultPlan};
use albic::engine::operator::{Counting, Identity, PaddedCounting, PADDED_STATE_PAD};
use albic::engine::tuple::{hash_key, Tuple, Value};
use albic::job::{Job, JobBuilder, Policy};
use albic::types::{KeyGroupId, NodeId};
use albic::{NetConfig, ReconnectPolicy, SocketKind, TransportOptions};

/// The stock worker daemon, built alongside this test by cargo.
fn worker_bin() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_BIN_EXE_albic-worker"))
}

fn net(kind: SocketKind) -> TransportOptions {
    TransportOptions::Net(match kind {
        SocketKind::Tcp => NetConfig::tcp(worker_bin()),
        #[cfg(unix)]
        SocketKind::Uds => NetConfig::uds(worker_bin()),
    })
}

/// A small two-stage job: pass-through source feeding a stateful
/// per-key-group counter, everything starting on node 0 so the MILP
/// policy has migrations to perform.
fn two_stage(nodes: usize) -> JobBuilder {
    Job::builder()
        .source("events", 4, Identity)
        .operator("count", 4, Counting)
        .edge("events", "count")
        .nodes(nodes)
        .routing_all_on_first()
        .policy(Policy::milp())
}

/// Drive `builder` through `periods` rounds of the skewed workload while
/// `plan` injects scripted faults, and return the final per-group counter
/// values. Recovery must never fire: this runner is for fault plans
/// (socket drops, or none at all) that the transport must absorb without
/// declaring a worker dead.
fn run_with_plan(builder: JobBuilder, plan: FaultPlan, periods: u64) -> Vec<(KeyGroupId, u64)> {
    let mut job = builder.build_threaded().expect("job starts");
    let mut faults = FaultInjector::new(plan);
    for p in 0..periods {
        let killed = faults.advance(job.engine_mut());
        assert!(killed.is_empty(), "this runner scripts no kills");
        for k in 0..12u64 {
            let n = 10 + (k * 3 + p) % 7;
            job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
            );
        }
        let report = job.step();
        assert!(report.apply.failed.is_empty(), "{:?}", report.apply.failed);
        assert!(
            report.recovery.failed.is_empty(),
            "period {p}: a dropped socket is not a dead worker — recovery must not fire"
        );
        assert_eq!(report.stats.dropped_tuples, 0.0, "period {p}: no drops");
    }
    let rt = job.into_engine();
    let cnt = rt.topology().operator_by_name("count").unwrap();
    let groups: Vec<KeyGroupId> = (0..rt.topology().num_key_groups())
        .map(KeyGroupId::new)
        .filter(|&g| rt.topology().operator_of_group(g) == cnt)
        .collect();
    let probed = groups
        .iter()
        .map(|&g| {
            let count = rt.probe_state(g).map_or(0, |bytes| {
                let mut arr = [0u8; 8];
                arr.copy_from_slice(&bytes[..8]);
                u64::from_le_bytes(arr)
            });
            (g, count)
        })
        .collect();
    rt.shutdown();
    probed
}

/// Run the 3-period workload fault-free.
fn run_and_probe(builder: JobBuilder) -> Vec<(KeyGroupId, u64)> {
    run_with_plan(builder, FaultPlan::new(), 3)
}

/// What the counters must hold after `periods` rounds of the workload:
/// every injected tuple counted exactly once, grouped by the counter's
/// key groups.
fn expected_counts(groups: &[(KeyGroupId, u64)], periods: u64) -> Vec<(KeyGroupId, u64)> {
    let mut expect: Vec<(KeyGroupId, u64)> = groups.iter().map(|&(g, _)| (g, 0)).collect();
    // Reconstruct the counter group of each key with the same topology
    // declaration (4 groups at the counter, offset by the source's 4).
    for k in 0..12u64 {
        let total: u64 = (0..periods).map(|p| 10 + (k * 3 + p) % 7).sum();
        let g = KeyGroupId::new(4 + (hash_key(&k) % 4) as u32);
        let slot = expect.iter_mut().find(|(eg, _)| *eg == g).unwrap();
        slot.1 += total;
    }
    expect
}

/// TCP loopback: the job runs on worker processes, migrates state over
/// the wire, and counts every tuple exactly once.
#[test]
fn tcp_loopback_job_counts_exactly_once() {
    let probed = run_and_probe(two_stage(2).transport(net(SocketKind::Tcp)));
    assert_eq!(probed, expected_counts(&probed, 3));
    assert!(probed.iter().any(|&(_, n)| n > 0), "counters actually ran");
}

/// The same job over a Unix-domain socket.
#[cfg(unix)]
#[test]
fn uds_loopback_job_counts_exactly_once() {
    let probed = run_and_probe(two_stage(2).transport(net(SocketKind::Uds)));
    assert_eq!(probed, expected_counts(&probed, 3));
    assert!(probed.iter().any(|&(_, n)| n > 0), "counters actually ran");
}

/// Socket death is not worker death: sever both workers' connections at
/// scripted steps (the processes stay alive and keep their state). The
/// sessions must resume over fresh sockets — no recovery, no checkpoint
/// rollback — and the final counters must be bit-identical to the
/// in-process oracle running the same workload.
#[test]
fn dropped_socket_resumes_session_with_exactly_once_counts() {
    let oracle = run_and_probe(two_stage(2));
    let mut job = two_stage(2)
        .transport(net(SocketKind::Tcp))
        .build_threaded()
        .expect("job starts");
    for p in 0..3u64 {
        // Sever a live connection before periods 1 and 2 — right before
        // the injections and the migration wave ride the link.
        if p > 0 {
            let node = NodeId::new((p % 2) as u32);
            assert!(
                job.engine_mut().drop_socket(node),
                "period {p}: {node:?} had a live connection to sever"
            );
        }
        for k in 0..12u64 {
            let n = 10 + (k * 3 + p) % 7;
            job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
            );
        }
        let report = job.step();
        assert!(report.apply.failed.is_empty(), "{:?}", report.apply.failed);
        assert!(
            report.recovery.failed.is_empty(),
            "period {p}: a dropped socket is not a dead worker — recovery must not fire"
        );
        assert_eq!(report.stats.dropped_tuples, 0.0, "period {p}: no drops");
    }
    let rt = job.into_engine();
    let cnt = rt.topology().operator_by_name("count").unwrap();
    let probed: Vec<(KeyGroupId, u64)> = (0..rt.topology().num_key_groups())
        .map(KeyGroupId::new)
        .filter(|&g| rt.topology().operator_of_group(g) == cnt)
        .map(|g| {
            let count = rt.probe_state(g).map_or(0, |bytes| {
                let mut arr = [0u8; 8];
                arr.copy_from_slice(&bytes[..8]);
                u64::from_le_bytes(arr)
            });
            (g, count)
        })
        .collect();
    rt.shutdown();
    assert_eq!(
        probed, oracle,
        "a resumed session must replay into bit-identical state"
    );
    assert!(probed.iter().any(|&(_, n)| n > 0), "counters actually ran");
}

/// Process-kill fault injection: a [`FaultPlan`] in networked mode
/// SIGKILLs the worker's OS process mid-job — under a *generous*
/// reconnect policy, which must not help, because the process (and its
/// state) is actually gone. The transport must refuse to wait out the
/// policy for a worker it killed itself, and checkpoint rollback plus
/// replay must still deliver exactly-once counts, deterministically.
#[test]
fn sigkilled_worker_process_recovers_exactly_once() {
    let generous = ReconnectPolicy {
        attempts: 32,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        jitter: 0.5,
    };
    let mut job = two_stage(3)
        .checkpoint_interval(1)
        .transport(TransportOptions::Net(
            NetConfig::tcp(worker_bin()).reconnect(generous),
        ))
        .build_threaded()
        .expect("job starts");
    let mut faults = FaultInjector::new(FaultPlan::new().kill(2, NodeId::new(1)));
    for p in 0..4u64 {
        let killed = faults.advance(job.engine_mut());
        assert_eq!(killed.len(), usize::from(p == 2), "kill lands at period 2");
        for k in 0..12u64 {
            let n = 10 + (k * 3 + p) % 7;
            job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
            );
        }
        let report = job.step();
        assert_eq!(
            report.recovery.failed.len(),
            usize::from(p == 2),
            "period {p}: recovery report"
        );
        assert!(report.apply.failed.is_empty(), "{:?}", report.apply.failed);
        assert_eq!(report.stats.dropped_tuples, 0.0, "period {p}: no drops");
    }
    let rt = job.into_engine();
    let cnt = rt.topology().operator_by_name("count").unwrap();
    for g in (0..rt.topology().num_key_groups()).map(KeyGroupId::new) {
        if rt.topology().operator_of_group(g) != cnt {
            continue;
        }
        let expected: u64 = (0..12u64)
            .filter(|&k| KeyGroupId::new(4 + (hash_key(&k) % 4) as u32) == g)
            .map(|k| (0..4u64).map(|p| 10 + (k * 3 + p) % 7).sum::<u64>())
            .sum();
        let got = rt.probe_state(g).map_or(0, |bytes| {
            let mut arr = [0u8; 8];
            arr.copy_from_slice(&bytes[..8]);
            u64::from_le_bytes(arr)
        });
        assert_eq!(got, expected, "group {g:?}: exactly-once after SIGKILL");
    }
    rt.shutdown();
}

/// Wire compression: the same job with LZ4 state compression on must
/// produce identical counts, and the migration accounting must show the
/// compressible state costing far fewer bytes on the wire than raw.
#[test]
fn compressed_state_migration_counts_exactly_once_and_shrinks() {
    let padded = |nodes: usize| {
        Job::builder()
            .source("events", 4, Identity)
            .operator("count", 4, PaddedCounting)
            .edge("events", "count")
            .nodes(nodes)
            .routing_all_on_first()
            .policy(Policy::milp())
    };
    let mut job = padded(2)
        .transport(TransportOptions::Net(
            NetConfig::tcp(worker_bin()).compressed(true),
        ))
        .build_threaded()
        .expect("job starts");
    let (mut state_bytes, mut wire_bytes) = (0usize, 0usize);
    for p in 0..3u64 {
        for k in 0..12u64 {
            let n = 10 + (k * 3 + p) % 7;
            job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
            );
        }
        let report = job.step();
        assert!(report.apply.failed.is_empty(), "{:?}", report.apply.failed);
        state_bytes += report.apply.total_state_bytes();
        wire_bytes += report.apply.total_wire_bytes();
    }
    let rt = job.into_engine();
    let cnt = rt.topology().operator_by_name("count").unwrap();
    let probed: Vec<(KeyGroupId, u64)> = (0..rt.topology().num_key_groups())
        .map(KeyGroupId::new)
        .filter(|&g| rt.topology().operator_of_group(g) == cnt)
        .map(|g| {
            let count = rt.probe_state(g).map_or(0, |bytes| {
                let mut arr = [0u8; 8];
                arr.copy_from_slice(&bytes[..8]);
                u64::from_le_bytes(arr)
            });
            (g, count)
        })
        .collect();
    rt.shutdown();
    assert_eq!(probed, expected_counts(&probed, 3));
    assert!(
        state_bytes > PADDED_STATE_PAD,
        "the padded counter must actually have migrated ({state_bytes} state bytes)"
    );
    assert!(
        wire_bytes < state_bytes / 4,
        "LZ4 must crush the 16 KiB constant padding: {wire_bytes} wire vs {state_bytes} raw"
    );
}

/// Kill a daemon process when the test is done with it (pass or panic).
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Launch a worker daemon pointed at `addr` the way an operator would on
/// another machine: environment only, no controller-side spawn.
fn spawn_daemon(addr: &str, node: u32, token: &str) -> KillOnDrop {
    KillOnDrop(
        Command::new(worker_bin())
            .env("ALBIC_WORKER_CONNECT", addr)
            .env("ALBIC_WORKER_NODE", node.to_string())
            .env("ALBIC_WORKER_TOKEN", token)
            .stdin(Stdio::null())
            .spawn()
            .expect("daemon launches"),
    )
}

/// Join mode: the controller spawns nothing. Externally launched daemons
/// dial in and authenticate with the shared token; a rogue daemon with
/// the wrong token is turned away and must not poison the slot it tried
/// to claim. The joined fabric then runs the workload exactly-once.
#[cfg(unix)]
#[test]
fn externally_launched_workers_join_with_token_auth() {
    let sock = std::env::temp_dir().join(format!("albic-join-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let addr = format!("uds:{}", sock.display());
    let token = "fabric-join-secret";

    // The rogue goes first, aiming at node 0 with a bad token.
    let _rogue = spawn_daemon(&addr, 0, "not-the-secret");
    let _workers: Vec<KillOnDrop> = (0..2u32).map(|n| spawn_daemon(&addr, n, token)).collect();

    let cfg = NetConfig::uds(worker_bin())
        .listen_on(sock.display().to_string())
        .with_token(token)
        .joinable(2)
        .join_deadline(Duration::from_secs(20));
    let probed = run_and_probe(two_stage(2).transport(TransportOptions::Net(cfg)));
    assert_eq!(probed, expected_counts(&probed, 3));
    assert!(probed.iter().any(|&(_, n)| n > 0), "counters actually ran");
}

/// A worker command that cannot launch must fail cleanly — the spawn
/// failure degrades that node to the crashed-worker path (no panic, no
/// hang), and building still returns.
#[test]
fn unlaunchable_worker_binary_fails_cleanly() {
    let result = two_stage(2)
        .transport(TransportOptions::Net(NetConfig::tcp(
            "/nonexistent/albic-worker",
        )))
        .build_threaded();
    // The listener binds fine; the spawn failure surfaces as instantly
    // dead workers, which recovery then reports — or, depending on
    // timing, the job starts and every step sees dead nodes. Either way
    // building must return (the spawn error path is exercised); give the
    // job a chance to observe the corpses and shut down.
    if let Ok(job) = result {
        let rt = job.into_engine();
        rt.shutdown();
    }
}
