//! Networked-transport integration: jobs whose workers are real child
//! processes connected over TCP or Unix-domain sockets must behave
//! exactly like the in-process substrate — including state migration
//! over the wire and exactly-once recovery from a SIGKILLed worker
//! process.

use albic::engine::fault::{FaultInjector, FaultPlan};
use albic::engine::operator::{Counting, Identity};
use albic::engine::tuple::{hash_key, Tuple, Value};
use albic::job::{Job, JobBuilder, Policy};
use albic::types::{KeyGroupId, NodeId};
use albic::{NetConfig, SocketKind, TransportOptions};

/// The stock worker daemon, built alongside this test by cargo.
fn worker_bin() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_BIN_EXE_albic-worker"))
}

fn net(kind: SocketKind) -> TransportOptions {
    TransportOptions::Net(NetConfig {
        worker_cmd: worker_bin(),
        kind,
    })
}

/// A small two-stage job: pass-through source feeding a stateful
/// per-key-group counter, everything starting on node 0 so the MILP
/// policy has migrations to perform.
fn two_stage(nodes: usize) -> JobBuilder {
    Job::builder()
        .source("events", 4, Identity)
        .operator("count", 4, Counting)
        .edge("events", "count")
        .nodes(nodes)
        .routing_all_on_first()
        .policy(Policy::milp())
}

/// Run a 3-period skewed workload and return the final per-group counter
/// values, keyed by counter key group.
fn run_and_probe(builder: JobBuilder) -> Vec<(KeyGroupId, u64)> {
    let mut job = builder.build_threaded().expect("job starts");
    for p in 0..3u64 {
        for k in 0..12u64 {
            let n = 10 + (k * 3 + p) % 7;
            job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
            );
        }
        let report = job.step();
        assert!(report.apply.failed.is_empty(), "{:?}", report.apply.failed);
    }
    let rt = job.into_engine();
    let cnt = rt.topology().operator_by_name("count").unwrap();
    let groups: Vec<KeyGroupId> = (0..rt.topology().num_key_groups())
        .map(KeyGroupId::new)
        .filter(|&g| rt.topology().operator_of_group(g) == cnt)
        .collect();
    let probed = groups
        .iter()
        .map(|&g| {
            let count = rt.probe_state(g).map_or(0, |bytes| {
                let mut arr = [0u8; 8];
                arr.copy_from_slice(&bytes[..8]);
                u64::from_le_bytes(arr)
            });
            (g, count)
        })
        .collect();
    rt.shutdown();
    probed
}

/// What the counters must hold after `run_and_probe`'s workload: every
/// injected tuple counted exactly once, grouped by the counter's key
/// groups.
fn expected_counts(groups: &[(KeyGroupId, u64)]) -> Vec<(KeyGroupId, u64)> {
    let mut expect: Vec<(KeyGroupId, u64)> = groups.iter().map(|&(g, _)| (g, 0)).collect();
    // Reconstruct the counter group of each key with the same topology
    // declaration (4 groups at the counter, offset by the source's 4).
    for k in 0..12u64 {
        let total: u64 = (0..3u64).map(|p| 10 + (k * 3 + p) % 7).sum();
        let g = KeyGroupId::new(4 + (hash_key(&k) % 4) as u32);
        let slot = expect.iter_mut().find(|(eg, _)| *eg == g).unwrap();
        slot.1 += total;
    }
    expect
}

/// TCP loopback: the job runs on worker processes, migrates state over
/// the wire, and counts every tuple exactly once.
#[test]
fn tcp_loopback_job_counts_exactly_once() {
    let probed = run_and_probe(two_stage(2).transport(net(SocketKind::Tcp)));
    assert_eq!(probed, expected_counts(&probed));
    assert!(probed.iter().any(|&(_, n)| n > 0), "counters actually ran");
}

/// The same job over a Unix-domain socket.
#[cfg(unix)]
#[test]
fn uds_loopback_job_counts_exactly_once() {
    let probed = run_and_probe(two_stage(2).transport(net(SocketKind::Uds)));
    assert_eq!(probed, expected_counts(&probed));
    assert!(probed.iter().any(|&(_, n)| n > 0), "counters actually ran");
}

/// Process-kill fault injection: a [`FaultPlan`] in networked mode
/// SIGKILLs the worker's OS process mid-job. Checkpoint rollback plus
/// replay must still deliver exactly-once counts, deterministically.
#[test]
fn sigkilled_worker_process_recovers_exactly_once() {
    let mut job = two_stage(3)
        .checkpoint_interval(1)
        .transport(net(SocketKind::Tcp))
        .build_threaded()
        .expect("job starts");
    let mut faults = FaultInjector::new(FaultPlan::new().kill(2, NodeId::new(1)));
    for p in 0..4u64 {
        let killed = faults.advance(job.engine_mut());
        assert_eq!(killed.len(), usize::from(p == 2), "kill lands at period 2");
        for k in 0..12u64 {
            let n = 10 + (k * 3 + p) % 7;
            job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
            );
        }
        let report = job.step();
        assert_eq!(
            report.recovery.failed.len(),
            usize::from(p == 2),
            "period {p}: recovery report"
        );
        assert!(report.apply.failed.is_empty(), "{:?}", report.apply.failed);
        assert_eq!(report.stats.dropped_tuples, 0.0, "period {p}: no drops");
    }
    let rt = job.into_engine();
    let cnt = rt.topology().operator_by_name("count").unwrap();
    for g in (0..rt.topology().num_key_groups()).map(KeyGroupId::new) {
        if rt.topology().operator_of_group(g) != cnt {
            continue;
        }
        let expected: u64 = (0..12u64)
            .filter(|&k| KeyGroupId::new(4 + (hash_key(&k) % 4) as u32) == g)
            .map(|k| (0..4u64).map(|p| 10 + (k * 3 + p) % 7).sum::<u64>())
            .sum();
        let got = rt.probe_state(g).map_or(0, |bytes| {
            let mut arr = [0u8; 8];
            arr.copy_from_slice(&bytes[..8]);
            u64::from_le_bytes(arr)
        });
        assert_eq!(got, expected, "group {g:?}: exactly-once after SIGKILL");
    }
    rt.shutdown();
}

/// A worker command that cannot launch must fail the build with a clear
/// error, not hang or panic.
#[test]
fn unlaunchable_worker_binary_fails_cleanly() {
    let result = two_stage(2)
        .transport(TransportOptions::Net(NetConfig::tcp(
            "/nonexistent/albic-worker",
        )))
        .build_threaded();
    // The listener binds fine; the spawn failure surfaces as instantly
    // dead workers, which recovery then reports — or, depending on
    // timing, the job starts and every step sees dead nodes. Either way
    // building must return (the spawn error path is exercised); give the
    // job a chance to observe the corpses and shut down.
    if let Ok(job) = result {
        let rt = job.into_engine();
        rt.shutdown();
    }
}
