//! Differential tests: epoch-aligned reconfiguration against the quiesced
//! oracle. The two executors are *observationally equivalent* — same final
//! counter states (bit-equal), same final routing, same per-period
//! statistics — even when migrations land mid-batch with tuples still in
//! flight. The quiesce path stops the world and is trivially correct; the
//! epoch path never stops unrelated operators, so any divergence here is a
//! barrier-alignment bug. The property test randomizes the knobs that bend
//! the data plane around a barrier: batch size, channel capacity, the
//! periodic no-op barrier interval, and the migration schedule itself.

use albic::engine::operator::{Counting, Identity};
use albic::engine::tuple::{Tuple, Value};
use albic::engine::{Migration, PeriodRecord, ReconfigMode, ReconfigPlan, Runtime, RuntimeConfig};
use albic::job::{Job, Policy};
use albic::types::{KeyGroupId, NodeId};
use proptest::prelude::*;

const KEYS: u64 = 24;
const NODES: usize = 3;

/// Deterministic skewed per-key tuple counts for one period.
fn tuples_of(key: u64, period: u64) -> u64 {
    1 + (key * 7 + period * 5) % 9
}

/// Build the scripted plan for one period: `(group, node)` pairs become
/// migrations, minus self-moves and duplicate groups (both executors must
/// see the *same* well-formed plan, so the normalization happens here, not
/// inside either apply path).
fn plan_of(rt: &Runtime, moves: &[(u32, u32)]) -> ReconfigPlan {
    let routing = rt.routing_snapshot();
    let total = rt.topology().num_key_groups();
    let mut seen = Vec::new();
    let mut plan = ReconfigPlan::noop();
    for &(g, n) in moves {
        let kg = KeyGroupId::new(g % total);
        let to = NodeId::new(n % NODES as u32);
        if seen.contains(&kg) || routing.node_of(kg) == to {
            continue;
        }
        seen.push(kg);
        plan.migrations.push(Migration { group: kg, to });
    }
    plan
}

/// One full run under `mode`: per period inject the deterministic
/// workload, apply that period's scripted migrations **without settling
/// first** (the plan lands while batches are still in flight), then close
/// the period. Returns the final per-group counter states, the final
/// routing assignment, and the metric history.
fn run_mode(
    mode: ReconfigMode,
    batch: usize,
    capacity: usize,
    barrier_interval: usize,
    schedule: &[Vec<(u32, u32)>],
) -> (Vec<u64>, Vec<NodeId>, Vec<PeriodRecord>) {
    let mut job = Job::builder()
        .source("events", 8, Identity)
        .operator("count", 8, Counting)
        .edge("events", "count")
        .nodes(NODES)
        .checkpoint_interval(1)
        .runtime_config(RuntimeConfig {
            batch_size: batch,
            channel_capacity: capacity,
            barrier_interval,
            ..RuntimeConfig::default()
        })
        .reconfig_mode(mode)
        .policy(Policy::noop())
        .build_threaded()
        .expect("valid job spec");
    for (p, moves) in schedule.iter().enumerate() {
        for k in 0..KEYS {
            let n = tuples_of(k, p as u64);
            job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p as u64)),
            );
        }
        // Mid-batch landing: no settle between inject and apply, so the
        // wave overtakes tuples still queued on the data plane.
        let plan = plan_of(job.engine(), moves);
        let report = job.apply(&plan);
        assert!(
            report.failed.is_empty(),
            "period {p}: no kills, every move must succeed: {:?}",
            report.failed
        );
        assert_eq!(report.migrations.len(), plan.migrations.len());
        let step = job.step();
        assert!(step.apply.failed.is_empty());
    }
    job.settle();
    let counts = final_counts(job.engine());
    let assignment = job.engine().routing_snapshot().assignment().to_vec();
    let history = job.history().to_vec();
    job.shutdown();
    (counts, assignment, history)
}

/// The per-group u64 counter states (0 for stateless/untouched groups).
fn final_counts(rt: &Runtime) -> Vec<u64> {
    let cnt = rt.topology().operator_by_name("count").unwrap();
    (0..rt.topology().num_key_groups())
        .map(|g| {
            let kg = KeyGroupId::new(g);
            if rt.topology().operator_of_group(kg) != cnt {
                return 0;
            }
            rt.probe_state(kg)
                .map(|b| {
                    let mut arr = [0u8; 8];
                    arr.copy_from_slice(&b[..8]);
                    u64::from_le_bytes(arr)
                })
                .unwrap_or(0)
        })
        .collect()
}

/// The per-period fields both executors must agree on. Wall-clock timings
/// (`migration_pause_secs`, `recovery_secs`) are excluded — the pause
/// *accounting model* differs by design (edge-local max vs. sum) and both
/// are machine-dependent.
#[allow(clippy::type_complexity)]
fn comparable(history: &[PeriodRecord]) -> Vec<(u64, usize, f64, usize, usize, f64, usize)> {
    history
        .iter()
        .map(|r| {
            (
                r.period,
                r.migrations,
                r.migration_cost,
                r.num_nodes,
                r.marked_nodes,
                r.dropped_tuples,
                r.failed_nodes,
            )
        })
        .collect()
}

/// Assert full observational equivalence of one schedule under the two
/// executors with the given data-plane knobs.
fn assert_epoch_matches_oracle(
    batch: usize,
    capacity: usize,
    barrier_interval: usize,
    schedule: &[Vec<(u32, u32)>],
) {
    let (oracle_counts, oracle_routing, oracle_history) =
        run_mode(ReconfigMode::Quiesce, batch, capacity, 0, schedule);
    let (counts, routing, history) = run_mode(
        ReconfigMode::Epoch,
        batch,
        capacity,
        barrier_interval,
        schedule,
    );

    assert_eq!(
        counts, oracle_counts,
        "final counter states diverge from the quiesced oracle"
    );
    assert_eq!(routing, oracle_routing, "final routing diverges");
    assert_eq!(
        comparable(&history),
        comparable(&oracle_history),
        "per-period statistics diverge"
    );
    // Arithmetic ground truth: exactly-once end to end.
    let total: u64 = (0..schedule.len() as u64)
        .flat_map(|p| (0..KEYS).map(move |k| tuples_of(k, p)))
        .sum();
    assert_eq!(counts.iter().sum::<u64>(), total);
    for rec in &history {
        assert_eq!(rec.dropped_tuples, 0.0, "period {}", rec.period);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Epoch-aligned apply is observationally equivalent to the quiesced
    /// oracle over randomized batch sizes, channel capacities, periodic
    /// barrier intervals and migration schedules — including plans that
    /// land mid-batch with tuples in flight on every edge.
    #[test]
    fn epoch_reconfiguration_matches_the_quiesced_oracle(
        batch in 1usize..=48,
        capacity in 8usize..=128,
        barrier in prop_oneof![Just(0usize), 64usize..512],
        schedule in proptest::collection::vec(
            proptest::collection::vec((0u32..16, 0u32..NODES as u32), 0..3),
            2..4,
        ),
    ) {
        assert_epoch_matches_oracle(batch, capacity, barrier, &schedule);
    }
}

/// Deterministic pin of the core scenario: tiny batches, a small channel,
/// periodic no-op waves, and back-to-back multi-move periods — the plan
/// always lands mid-batch.
#[test]
fn mid_batch_migration_epoch_matches_quiesce_oracle() {
    let schedule = vec![
        vec![(3, 1), (9, 2), (14, 0)],
        vec![(3, 2), (6, 1)],
        vec![(9, 0), (14, 2), (1, 1)],
    ];
    assert_epoch_matches_oracle(4, 16, 64, &schedule);
}

/// Periodic no-op barrier waves under load change nothing: every tuple is
/// counted exactly once and routing never moves.
#[test]
fn noop_barrier_waves_under_load_are_exactly_once() {
    let schedule = vec![vec![], vec![], vec![]];
    let (counts, routing, history) = run_mode(ReconfigMode::Epoch, 8, 32, 48, &schedule);
    let total: u64 = (0..schedule.len() as u64)
        .flat_map(|p| (0..KEYS).map(move |k| tuples_of(k, p)))
        .sum();
    assert_eq!(counts.iter().sum::<u64>(), total);
    let (oracle_counts, oracle_routing, _) = run_mode(ReconfigMode::Quiesce, 8, 32, 0, &schedule);
    assert_eq!(counts, oracle_counts);
    assert_eq!(routing, oracle_routing);
    for rec in &history {
        assert_eq!(rec.migrations, 0);
        assert_eq!(rec.dropped_tuples, 0.0);
    }
}
