//! The stock worker daemon: serves any job built from the engine's
//! built-in operators. Jobs using custom operator logic need their own
//! binary — a few lines registering that logic before handing off to
//! [`albic::engine::transport::worker_main`].

fn main() {
    std::process::exit(albic::engine::transport::worker_main(
        albic::engine::transport::OperatorRegistry::with_builtins(),
    ));
}
