//! **albic** — a from-scratch Rust reproduction of *Integrative Dynamic
//! Reconfiguration in a Parallel Stream Processing Engine* (Madsen, Zhou &
//! Cao, arXiv:1602.03770 / ICDE'17 line of work).
//!
//! This umbrella crate re-exports the workspace so applications can depend
//! on one crate:
//!
//! * [`types`] — shared ids and value types (nodes, operators, key groups,
//!   loads, statistics periods).
//! * [`engine`] — the parallel stream processing engine substrate:
//!   topologies, key-group state, routing, statistics, direct state
//!   migration, a threaded runtime and a deterministic simulator.
//! * [`milp`] — the MILP toolkit standing in for CPLEX: simplex, branch &
//!   bound, and a structured solver for the paper's allocation MILP with
//!   exact relaxation bounds.
//! * [`partition`] — multilevel balanced graph partitioning (METIS
//!   substitute).
//! * [`core`] — the paper's contribution: the integrative adaptation
//!   framework (Algorithm 1), the MILP load balancer (§4.3.1), ALBIC
//!   (Algorithm 2), horizontal scaling, and the Flux/PoTC/COLA baselines.
//! * [`workloads`] — dataset simulators (Wikipedia edits, airline
//!   on-time, GSOD weather), synthetic cluster scenarios, and the paper's
//!   Real Jobs 1-4.
//!
//! # Quickstart
//!
//! The front door is the fluent [`job`] API: one validating builder from
//! topology to adaptation loop, on either substrate. A 20-node cluster
//! with a skewed synthetic workload, balanced by the paper's MILP under a
//! migration budget, on the deterministic simulator:
//!
//! ```
//! use albic::job::{Job, Policy};
//! use albic::milp::MigrationBudget;
//! use albic::workloads::{SyntheticConfig, SyntheticWorkload};
//!
//! # fn main() -> Result<(), albic::job::JobError> {
//! let cfg = SyntheticConfig { varies: 40.0, ..SyntheticConfig::cluster(20) };
//! let mut job = Job::builder()
//!     .nodes(20)
//!     .policy(Policy::milp().with_budget(MigrationBudget::Count(20)))
//!     .build_simulated(SyntheticWorkload::new(cfg))?;
//!
//! let history = job.run(3).to_vec();
//! assert!(history.last().unwrap().load_distance <= history[0].load_distance);
//! # Ok(())
//! # }
//! ```
//!
//! Swap `build_simulated(..)` for `.source(..).operator(..).edge(..)` +
//! `build_threaded()` and the identical policy stack runs on real worker
//! threads with real state migration — see `examples/quickstart.rs`. The
//! layer-by-layer constructors (`TopologyBuilder`, `Cluster`,
//! `RoutingTable`, `Controller`, ...) remain available for advanced
//! wiring.

#![forbid(unsafe_code)]

pub use albic_core as core;
pub use albic_engine as engine;
pub use albic_milp as milp;
pub use albic_partition as partition;
pub use albic_types as types;
pub use albic_workloads as workloads;

pub use albic_core::job;
pub use albic_core::job::{Job, JobBuilder, JobError, JobSummary, Policy};
pub use albic_engine::ReconfigMode;
pub use albic_engine::{ChunkSorter, DataPlane, RuntimeConfig, StreamChunk};
pub use albic_engine::{NetConfig, ReconnectPolicy, SocketKind, TransportError, TransportOptions};
