//! **albic** — a from-scratch Rust reproduction of *Integrative Dynamic
//! Reconfiguration in a Parallel Stream Processing Engine* (Madsen, Zhou &
//! Cao, arXiv:1602.03770 / ICDE'17 line of work).
//!
//! This umbrella crate re-exports the workspace so applications can depend
//! on one crate:
//!
//! * [`types`] — shared ids and value types (nodes, operators, key groups,
//!   loads, statistics periods).
//! * [`engine`] — the parallel stream processing engine substrate:
//!   topologies, key-group state, routing, statistics, direct state
//!   migration, a threaded runtime and a deterministic simulator.
//! * [`milp`] — the MILP toolkit standing in for CPLEX: simplex, branch &
//!   bound, and a structured solver for the paper's allocation MILP with
//!   exact relaxation bounds.
//! * [`partition`] — multilevel balanced graph partitioning (METIS
//!   substitute).
//! * [`core`] — the paper's contribution: the integrative adaptation
//!   framework (Algorithm 1), the MILP load balancer (§4.3.1), ALBIC
//!   (Algorithm 2), horizontal scaling, and the Flux/PoTC/COLA baselines.
//! * [`workloads`] — dataset simulators (Wikipedia edits, airline
//!   on-time, GSOD weather), synthetic cluster scenarios, and the paper's
//!   Real Jobs 1-4.
//!
//! # Quickstart
//!
//! ```
//! use albic::core::{AdaptationFramework, Controller, MilpBalancer};
//! use albic::engine::{Cluster, CostModel, RoutingTable, SimEngine};
//! use albic::milp::MigrationBudget;
//! use albic::workloads::{SyntheticConfig, SyntheticWorkload};
//!
//! // A 20-node cluster with a skewed synthetic workload...
//! let cfg = SyntheticConfig { varies: 40.0, ..SyntheticConfig::cluster(20) };
//! let workload = SyntheticWorkload::new(cfg);
//! let mut engine = SimEngine::with_round_robin(
//!     workload,
//!     Cluster::homogeneous(20),
//!     CostModel::default(),
//! );
//!
//! // ...balanced by the paper's MILP under a migration budget. The
//! // Controller owns the Algorithm-1 loop and drives the simulator and
//! // the threaded runtime identically (both are `ReconfigEngine`s).
//! let mut policy = AdaptationFramework::balancing_only(
//!     MilpBalancer::new(MigrationBudget::Count(20)),
//! );
//! let history = Controller::new(&mut engine).run(&mut policy, 3);
//! let before = history[0].load_distance;
//! let after = history.last().unwrap().load_distance;
//! assert!(after <= before);
//! ```

#![forbid(unsafe_code)]

pub use albic_core as core;
pub use albic_engine as engine;
pub use albic_milp as milp;
pub use albic_partition as partition;
pub use albic_types as types;
pub use albic_workloads as workloads;
