//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), [`strategy::Strategy`]
//! with `prop_map`/`prop_flat_map`/`boxed`, range/tuple/[`strategy::Just`]/
//! string/[`arbitrary::any`] strategies, [`collection::vec`], [`prop_oneof!`],
//! and the `prop_assert*`/[`prop_assume!`] macros.
//!
//! Differences from real proptest: case generation is seeded
//! deterministically from the test name (fully reproducible runs), string
//! strategies treat the pattern as "printable chars" honoring only a
//! trailing `{lo,hi}` repetition, and there is **no shrinking** — a failing
//! case panics with the generating values' Debug output instead of a
//! minimized counterexample.

#![forbid(unsafe_code)]

/// Why a single generated test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// A `prop_assert*!` failed; the test panics.
    Fail(String),
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic random source used to instantiate strategies.
pub mod test_runner {
    /// A splitmix64-based generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed deterministically from a test name (FNV-1a).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategies: recipes for generating values.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Instantiate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase this strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S1, S2, F> Strategy for FlatMap<S1, F>
    where
        S1: Strategy,
        S2: Strategy,
        F: Fn(S1::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between type-erased alternatives.
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Choose uniformly among `alternatives` (must be non-empty).
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len());
            self.0[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    if lo as i128 == <$t>::MIN as i128 && hi as i128 == <$t>::MAX as i128 {
                        return rng.next_u64() as $t;
                    }
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }

    /// String strategy from a pattern literal. Only the trailing `{lo,hi}`
    /// repetition of the pattern is honored; characters are drawn from a
    /// printable pool (ASCII plus a few multi-byte code points) regardless
    /// of the character class.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repetition(self).unwrap_or((0, 32));
            let len = lo + rng.below(hi - lo + 1);
            const POOL: &[char] = &[
                'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '9', ' ', '.', ',', '-', '_', '/',
                '\\', '"', '\'', '{', '}', '[', ']', '(', ')', '!', '?', '#', '@', '~', 'é', 'ß',
                'λ', 'Ж', '中', '文', '🦀', '∑',
            ];
            (0..len).map(|_| POOL[rng.below(POOL.len())]).collect()
        }
    }

    fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let (_, rep) = body.rsplit_once('{')?;
        let (lo, hi) = rep.split_once(',')?;
        let lo = lo.trim().parse().ok()?;
        let hi = hi.trim().parse().ok()?;
        (lo <= hi).then_some((lo, hi))
    }

    /// Phantom strategy behind [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Raw bit patterns: exercises subnormals, infinities, and NaN.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    /// The strategy generating any `T`, like `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s of values from `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors, like `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, like `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Uniform choice among heterogeneous strategies yielding one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alternative:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($alternative) ),+
        ])
    };
}

/// Assert inside a proptest case; failure reports the case instead of
/// unwinding through the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {:?} != {:?}", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

/// Inequality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: {:?} == {:?}", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, $($fmt)+);
    }};
}

/// Reject the current case (it is regenerated, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The test-declaration macro, like `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __cases = __config.cases as usize;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __accepted = 0usize;
                let mut __attempts = 0usize;
                while __accepted < __cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __cases.saturating_mul(200),
                        "proptest {}: too many cases rejected by prop_assume!",
                        stringify!($name),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed: {}", stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 2usize..10, (a, b) in (0i32..5, 1.0f64..2.0)) {
            prop_assert!((2..10).contains(&x));
            prop_assert!((0..5).contains(&a));
            prop_assert!((1.0..2.0).contains(&b));
        }

        #[test]
        fn flat_map_and_vec(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u64..100, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1usize), 10usize..20, (30usize..40).prop_map(|v| v)]) {
            prop_assert!(x == 1 || (10..20).contains(&x) || (30..40).contains(&x));
        }

        #[test]
        fn assume_rejects(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn strings_honor_repetition(s in "\\PC{0,24}") {
            prop_assert!(s.chars().count() <= 24);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        for _ in 0..50 {
            assert_eq!(
                (0usize..1000).generate(&mut a),
                (0usize..1000).generate(&mut b)
            );
        }
    }
}
