//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`
//! (which since Rust 1.72 *is* crossbeam-channel's MPSC queue under the
//! hood). Covers the surface the engine runtime uses: `unbounded`,
//! cloneable `Sender`, and blocking `recv`.

#![forbid(unsafe_code)]

/// MPSC channels mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when sending into a channel with no receiver.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, failing only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over received values.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(42).unwrap());
            assert_eq!(rx.recv(), Ok(42));
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
