//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its value types so
//! that a real serde can be dropped in later (see the root manifest), but
//! nothing in-tree performs serialization yet. These derives therefore
//! expand to nothing: the types stay annotated, the build stays offline.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
