//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace's value types are annotated with
//! `#[derive(Serialize, Deserialize)]` so a real serde can be swapped in
//! via the root manifest without touching any source file, but no in-tree
//! code serializes through serde yet (the engine has its own binary codec
//! in `albic-engine::codec`). This stub supplies the two trait names and
//! re-exports no-op derive macros under the same names, mirroring serde's
//! `derive` feature.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
