//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the subset of criterion's API that the workspace benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`bench_with_input`, `Bencher::iter`,
//! `black_box`) over a simple wall-clock harness: each benchmark is warmed
//! up, then timed over a fixed number of samples, and the per-iteration
//! median is printed. No statistics, plots, or HTML reports — swap in the
//! real criterion via the root manifest for those.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Few samples: the stub optimizes for "benches compile and run",
        // not statistical rigor.
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Run `f` as a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.samples, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            _parent: self,
        }
    }

    /// Mirror of criterion's final-summary hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Set the target measurement time. Accepted for API compatibility;
    /// the stub times a fixed number of samples instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run `f` as `<group>/<id>`.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Run `f` as `<group>/<id>` with a borrowed input.
    pub fn bench_with_input<S: Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (prints nothing extra in the stub).
    pub fn finish(&mut self) {}
}

/// Identifies one parameterized benchmark, like `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id rendered from a function name and a parameter.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id rendered from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
    samples: usize,
}

impl Bencher {
    /// Time `f`, storing the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-sample iteration count calibration.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed();
        let iters = if once > Duration::from_millis(20) {
            1
        } else {
            ((Duration::from_millis(20).as_nanos() / once.as_nanos().max(1)) as usize)
                .clamp(1, 10_000)
        };

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            times.push(t.elapsed() / iters as u32);
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        last_median: Duration::ZERO,
        samples,
    };
    f(&mut b);
    println!("bench {id:<48} median {:>12.3?}", b.last_median);
}

/// Declare a group of benchmark functions, like `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark binary's `main`, like `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
