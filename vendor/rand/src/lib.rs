//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace must build in fully air-gapped environments, so the
//! external dependencies resolve to local stubs implementing exactly the
//! API surface the workspace uses (see `[workspace.dependencies]` in the
//! root manifest). This stub covers, with `rand 0.8` signatures:
//!
//! * [`Rng::gen_range`] / [`Rng::gen_bool`]
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`]
//! * [`rngs::SmallRng`] (an xoshiro256** generator, splitmix64-seeded)
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`]
//!
//! The generator is deterministic for a given seed, which is exactly what
//! the simulators and tests rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its full-width "standard"
    /// distribution (mirrors `Rng::gen` with `Standard`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        uniform_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via splitmix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable by [`Rng::gen`] (stands in for `Standard: Distribution<T>`).
pub trait Standard {
    /// Draw one full-width value.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> f64 {
        uniform_f64(rng.next_u64())
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn uniform_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**), playing the
    /// role of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                let mut st = 0xDEAD_BEEF_u64;
                for w in &mut s {
                    *w = splitmix64(&mut st);
                }
            }
            SmallRng { s }
        }
    }
}

/// Uniform range sampling, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; span is far below 2^64 in
                // practice so modulo bias from widening is negligible here,
                // and the 128-bit multiply avoids it entirely for u64 spans.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = uniform_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = uniform_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly choose one element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = r.gen_range(-10..40);
            assert!((-10..40).contains(&x));
            let f = r.gen_range(0.5..60.0);
            assert!((0.5..60.0).contains(&f));
            let u = r.gen_range(0..5000u64);
            assert!(u < 5000);
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
