//! Distributed: the quickstart job on real worker *processes* connected
//! over loopback TCP — skewed load rebalanced with state migrations over
//! the wire, then a scripted mid-run fault, recovered exactly-once.
//! Emits one TSV row per period (the bench binaries' format) and
//! verifies the final counter totals.
//!
//! The fault defaults to a SIGKILL of one worker process (checkpoint
//! recovery). With `--drop-socket` the fault is instead a severed
//! connection: the process survives, the session resumes under the
//! reconnect policy, and *no* recovery may fire. `--compress` turns on
//! LZ4 wire compression for migrated state.
//!
//! The worker side is the stock `albic-worker` daemon built by this
//! workspace (`cargo build --release` builds it alongside the example);
//! set `ALBIC_WORKER_BIN` to point somewhere else.

use std::path::PathBuf;

use albic::engine::fault::{FaultInjector, FaultPlan};
use albic::engine::operator::{Counting, Identity};
use albic::engine::tuple::{hash_key, Tuple, Value};
use albic::job::{Job, JobError, Policy};
use albic::types::{KeyGroupId, NodeId};
use albic::{NetConfig, TransportOptions};

const NODES: usize = 3;
const PERIODS: u64 = 5;
const KEYS: u64 = 16;
const FAULT_AT: u64 = 2;

/// Skewed per-key tuple counts: a few hot keys, deterministic.
fn tuples_of(key: u64, period: u64) -> u64 {
    20 + (key * 7 + period * 3) % 11 + if key < 3 { 150 } else { 0 }
}

/// Locate the `albic-worker` daemon: `$ALBIC_WORKER_BIN` wins, else the
/// binary next to this example (`target/<profile>/examples/distributed`
/// → `target/<profile>/albic-worker`).
fn worker_bin() -> PathBuf {
    if let Ok(p) = std::env::var("ALBIC_WORKER_BIN") {
        return PathBuf::from(p);
    }
    let exe = std::env::current_exe().expect("current_exe");
    let profile_dir = exe
        .parent()
        .and_then(|p| p.parent())
        .expect("examples dir has a parent");
    let candidate = profile_dir.join("albic-worker");
    if !candidate.exists() {
        eprintln!(
            "albic-worker not found at {}; run `cargo build` first or set ALBIC_WORKER_BIN",
            candidate.display()
        );
        std::process::exit(2);
    }
    candidate
}

fn main() -> Result<(), JobError> {
    let drop_socket = std::env::args().any(|a| a == "--drop-socket");
    let compress = std::env::args().any(|a| a == "--compress");
    let net = NetConfig::tcp(worker_bin()).compressed(compress);
    let mut job = Job::builder()
        .source("events", 4, Identity)
        .operator("count", 4, Counting)
        .edge("events", "count")
        .nodes(NODES)
        .routing_all_on_first()
        .checkpoint_interval(1)
        .policy(Policy::milp())
        .transport(TransportOptions::Net(net))
        .build_threaded()?;
    let fault = if drop_socket {
        "socket drop"
    } else {
        "SIGKILL"
    };
    println!(
        "# {NODES} worker processes over loopback TCP; {fault} on node 1 before period \
         {FAULT_AT}; compression {}",
        if compress { "on" } else { "off" }
    );
    println!("# period\ttuples\tcross\tdropped\tmigrations\tfailed_nodes\trestored_groups");

    let plan = if drop_socket {
        FaultPlan::new().drop_socket(FAULT_AT, NodeId::new(1))
    } else {
        FaultPlan::new().kill(FAULT_AT, NodeId::new(1))
    };
    let mut faults = FaultInjector::new(plan);
    for p in 0..PERIODS {
        let killed = faults.advance(job.engine_mut());
        if !killed.is_empty() {
            eprintln!("(sent SIGKILL to the worker process of {killed:?})");
        } else if drop_socket && p == FAULT_AT {
            eprintln!("(severed the connection of node 1; the process survives)");
        }
        for k in 0..KEYS {
            let n = tuples_of(k, p);
            job.inject(
                "events",
                (0..n).map(|i| Tuple::keyed(&k, Value::Int(i as i64), p)),
            );
        }
        let report = job.step();
        let entry = job.history().last().expect("step records history").clone();
        println!(
            "{p}\t{}\t{}\t{}\t{}\t{}\t{}",
            report.stats.total_tuples,
            // + 0.0 normalizes the float's negative zero for display
            report.stats.cross_tuples + 0.0,
            report.stats.dropped_tuples,
            report.plan.migrations.len(),
            entry.failed_nodes,
            entry.groups_restored,
        );
        if drop_socket {
            assert_eq!(
                entry.failed_nodes, 0,
                "a dropped socket resumed its session; recovery must not fire"
            );
        }
    }

    // Exactly-once verification: every injected tuple counted once,
    // despite the wire migrations and the scripted fault.
    let rt = job.into_engine();
    let cnt = rt.topology().operator_by_name("count").expect("operator");
    let mut total = 0u64;
    for g in (0..rt.topology().num_key_groups()).map(KeyGroupId::new) {
        if rt.topology().operator_of_group(g) != cnt {
            continue;
        }
        let expected: u64 = (0..KEYS)
            .filter(|&k| KeyGroupId::new(4 + (hash_key(&k) % 4) as u32) == g)
            .map(|k| (0..PERIODS).map(|p| tuples_of(k, p)).sum::<u64>())
            .sum();
        let got = rt.probe_state(g).map_or(0, |bytes| {
            let mut arr = [0u8; 8];
            arr.copy_from_slice(&bytes[..8]);
            u64::from_le_bytes(arr)
        });
        assert_eq!(got, expected, "group {g:?}: exactly-once after {fault}");
        total += got;
    }
    rt.shutdown();
    println!("# exactly-once verified: {total} tuples counted across {NODES} processes");
    Ok(())
}
