//! Integrative horizontal scaling (Algorithm 1): a load ramp forces
//! scale-out, the subsequent lull triggers scale-in, and the framework
//! vetoes scaling whenever plain rebalancing suffices.
//!
//! ```sh
//! cargo run --release --example elastic_scaling
//! ```

use albic::engine::sim::{WorkloadModel, WorkloadSnapshot};
use albic::job::{Job, JobError, Policy};
use albic::milp::MigrationBudget;
use albic::types::Period;

/// A workload whose volume ramps up 3x, plateaus, then falls back.
struct RampWorkload {
    groups: u32,
}

impl WorkloadModel for RampWorkload {
    fn num_groups(&self) -> u32 {
        self.groups
    }
    fn snapshot(&mut self, period: Period) -> WorkloadSnapshot {
        let p = period.index() as f64;
        let mult = if p < 10.0 {
            1.0 + 0.2 * p // ramp to 3x
        } else if p < 20.0 {
            3.0
        } else {
            (3.0 - 0.25 * (p - 20.0)).max(1.0)
        };
        let per_group = 80_000.0 / self.groups as f64 * mult / 4.0;
        WorkloadSnapshot {
            group_tuples: vec![per_group; self.groups as usize],
            group_cost: vec![1.0; self.groups as usize],
            comm: vec![],
            state_bytes: vec![4096.0; self.groups as usize],
        }
    }
}

fn main() -> Result<(), JobError> {
    // One builder call assembles cluster, routing, policy and controller;
    // swap `build_simulated` for `build_threaded` (plus a topology) and
    // the same loop runs on real worker threads — see live_pipeline.rs.
    let mut job = Job::builder()
        .nodes(4)
        .policy(
            Policy::milp()
                .with_budget(MigrationBudget::Count(24))
                .with_scaling(35.0, 80.0, 60.0),
        )
        .build_simulated(RampWorkload { groups: 64 })?;

    println!("period | nodes (marked) | mean load | distance | migrations");
    let _ = job.run_with(36, |t| {
        let r = t.record;
        println!(
            "{:>6} | {:>5} ({:>2})    | {:>8.1}% | {:>7.2}% | {:>4}",
            t.period, r.num_nodes, r.marked_nodes, r.mean_load, r.load_distance, r.migrations,
        );
    });

    let summary = job.report();
    println!(
        "\nscaled out to {} nodes at peak, back down to {} after the lull",
        summary.peak_nodes, summary.final_nodes
    );
    Ok(())
}
