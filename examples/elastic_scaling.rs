//! Integrative horizontal scaling (Algorithm 1): a load ramp forces
//! scale-out, the subsequent lull triggers scale-in, and the framework
//! vetoes scaling whenever plain rebalancing suffices.
//!
//! ```sh
//! cargo run --release --example elastic_scaling
//! ```

use albic::core::framework::AdaptationFramework;
use albic::core::scaling::ThresholdScaling;
use albic::core::{Controller, MilpBalancer};
use albic::engine::sim::{SimEngine, WorkloadModel, WorkloadSnapshot};
use albic::engine::{Cluster, CostModel};
use albic::milp::MigrationBudget;
use albic::types::Period;

/// A workload whose volume ramps up 3x, plateaus, then falls back.
struct RampWorkload {
    groups: u32,
}

impl WorkloadModel for RampWorkload {
    fn num_groups(&self) -> u32 {
        self.groups
    }
    fn snapshot(&mut self, period: Period) -> WorkloadSnapshot {
        let p = period.index() as f64;
        let mult = if p < 10.0 {
            1.0 + 0.2 * p // ramp to 3x
        } else if p < 20.0 {
            3.0
        } else {
            (3.0 - 0.25 * (p - 20.0)).max(1.0)
        };
        let per_group = 80_000.0 / self.groups as f64 * mult / 4.0;
        WorkloadSnapshot {
            group_tuples: vec![per_group; self.groups as usize],
            group_cost: vec![1.0; self.groups as usize],
            comm: vec![],
            state_bytes: vec![4096.0; self.groups as usize],
        }
    }
}

fn main() {
    let mut engine = SimEngine::with_round_robin(
        RampWorkload { groups: 64 },
        Cluster::homogeneous(4),
        CostModel::default(),
    );
    let mut policy = AdaptationFramework::with_scaling(
        MilpBalancer::new(MigrationBudget::Count(24)),
        ThresholdScaling::new(35.0, 80.0, 60.0),
    );

    // One Controller step = one Algorithm-1 round: housekeeping → stats →
    // policy → apply.
    let mut ctl = Controller::new(&mut engine);
    println!("period | nodes (marked) | mean load | distance | migrations");
    for p in 0..36 {
        ctl.step(&mut policy);
        let rec = ctl.history().last().unwrap();
        println!(
            "{:>6} | {:>5} ({:>2})    | {:>8.1}% | {:>7.2}% | {:>4}",
            p, rec.num_nodes, rec.marked_nodes, rec.mean_load, rec.load_distance, rec.migrations,
        );
    }
    let peak = ctl.history().iter().map(|r| r.num_nodes).max().unwrap();
    let end = ctl.history().last().unwrap().num_nodes;
    println!("\nscaled out to {peak} nodes at peak, back down to {end} after the lull");
}
