//! Live elastic scaling on the *threaded* runtime: one worker is
//! overloaded by a load ramp, the integrated framework (Algorithm 1)
//! acquires workers and rebalances onto them with real state migrations,
//! and the lull afterwards drains a marked worker and joins its thread.
//!
//! This is `examples/elastic_scaling.rs` with the simulator swapped for
//! real worker threads — the builder call differs only in the final
//! `build_threaded()` vs `build_simulated(...)`, which is the point of
//! the `ReconfigEngine` trait.
//!
//! ```sh
//! cargo run --release --example live_pipeline
//! ```

use albic::engine::tuple::{Tuple, Value};
use albic::job::{Job, JobError, Policy};

/// Tuples injected per period: ramp → plateau (overload) → lull.
/// Keep in sync with `fig15_rate` in `crates/bench/src/experiments.rs` —
/// this example is the CI smoke for the published fig15 scenario.
fn rate(period: u64) -> usize {
    match period {
        0..=3 => 4_000 * (period as usize + 1),
        4..=9 => 16_000,
        _ => 1_500,
    }
}

fn main() -> Result<(), JobError> {
    use albic::engine::operator::{Counting, Identity};

    // A pass-through source feeding a stateful per-key counter, starting
    // on a single worker thread that hosts every key group.
    let mut job = Job::builder()
        .source("events", 8, Identity)
        .operator("count", 8, Counting)
        .edge("events", "count")
        .nodes(1)
        .policy(Policy::milp().with_scaling(35.0, 80.0, 60.0))
        .build_threaded()?;

    println!("period | nodes (marked) | mean load | migrations | note");
    for p in 0..16u64 {
        let n = rate(p);
        job.inject(
            "events",
            (0..n).map(|i| Tuple::keyed(&(i % 64), Value::Int(i as i64), p)),
        );
        let report = job.step();
        let rec = job.history().last().unwrap();
        let note = if !report.apply.added.is_empty() {
            format!(
                "scale-OUT: spawned {} worker(s), shipped {} bytes of state",
                report.apply.added.len(),
                report.apply.total_state_bytes()
            )
        } else if !report.apply.marked.is_empty() {
            format!(
                "scale-IN: marked {} worker(s) to drain",
                report.apply.marked.len()
            )
        } else if !report.terminated.is_empty() {
            format!(
                "joined {} drained worker thread(s)",
                report.terminated.len()
            )
        } else {
            String::new()
        };
        println!(
            "{:>6} | {:>5} ({:>2})    | {:>8.1}% | {:>10} | {}",
            p, rec.num_nodes, rec.marked_nodes, rec.mean_load, rec.migrations, note,
        );
    }

    let summary = job.report();
    let (peak, end) = (summary.peak_nodes, summary.final_nodes);
    job.shutdown();
    println!(
        "\nscaled out to {peak} real worker threads at peak, back down to {end} after the lull"
    );
    assert!(peak > 1, "overload must have triggered scale-out");
    assert!(end < peak, "the lull must have scaled back in");
    Ok(())
}
