//! Live elastic scaling on the *threaded* runtime: one worker is
//! overloaded by a load ramp, the integrated framework (Algorithm 1)
//! acquires workers and rebalances onto them with real state migrations,
//! and the lull afterwards drains a marked worker and joins its thread.
//!
//! This is `examples/elastic_scaling.rs` with the simulator swapped for
//! real worker threads — the Controller and the policy are identical,
//! which is the point of the `ReconfigEngine` trait.
//!
//! ```sh
//! cargo run --release --example live_pipeline
//! ```

use std::sync::Arc;

use albic::core::{AdaptationFramework, Controller, MilpBalancer, ThresholdScaling};
use albic::engine::operator::{Counting, Identity};
use albic::engine::topology::TopologyBuilder;
use albic::engine::tuple::{Tuple, Value};
use albic::engine::{Cluster, CostModel, RoutingTable};
use albic::milp::MigrationBudget;

/// Tuples injected per period: ramp → plateau (overload) → lull.
/// Keep in sync with `fig15_rate` in `crates/bench/src/experiments.rs` —
/// this example is the CI smoke for the published fig15 scenario.
fn rate(period: u64) -> usize {
    match period {
        0..=3 => 4_000 * (period as usize + 1),
        4..=9 => 16_000,
        _ => 1_500,
    }
}

fn main() {
    // A pass-through source feeding a stateful per-key counter.
    let mut b = TopologyBuilder::new();
    let src = b.source("events", 8, Arc::new(Identity));
    let count = b.operator("count", 8, Arc::new(Counting));
    b.edge(src, count);
    let topology = b.build().expect("valid DAG");

    // Start with a single worker thread hosting every key group.
    let cluster = Cluster::homogeneous(1);
    let routing = RoutingTable::all_on(topology.num_key_groups(), cluster.nodes()[0].id);
    let rt =
        albic::engine::runtime::Runtime::start(topology, cluster, routing, CostModel::default());

    let mut policy = AdaptationFramework::with_scaling(
        MilpBalancer::new(MigrationBudget::Unlimited),
        ThresholdScaling::new(35.0, 80.0, 60.0),
    );
    let mut ctl = Controller::new(rt);

    println!("period | nodes (marked) | mean load | migrations | note");
    for p in 0..16u64 {
        let n = rate(p);
        ctl.engine_mut().inject(
            src,
            (0..n).map(|i| Tuple::keyed(&(i % 64), Value::Int(i as i64), p)),
        );
        ctl.engine_mut().quiesce(4);
        let report = ctl.step(&mut policy);
        let rec = ctl.history().last().unwrap();
        let note = if !report.apply.added.is_empty() {
            format!(
                "scale-OUT: spawned {} worker(s), shipped {} bytes of state",
                report.apply.added.len(),
                report.apply.total_state_bytes()
            )
        } else if !report.apply.marked.is_empty() {
            format!(
                "scale-IN: marked {} worker(s) to drain",
                report.apply.marked.len()
            )
        } else if !report.terminated.is_empty() {
            format!(
                "joined {} drained worker thread(s)",
                report.terminated.len()
            )
        } else {
            String::new()
        };
        println!(
            "{:>6} | {:>5} ({:>2})    | {:>8.1}% | {:>10} | {}",
            p, rec.num_nodes, rec.marked_nodes, rec.mean_load, rec.migrations, note,
        );
    }

    let peak = ctl.history().iter().map(|r| r.num_nodes).max().unwrap();
    let end = ctl.history().last().unwrap().num_nodes;
    ctl.into_engine().shutdown();
    println!(
        "\nscaled out to {peak} real worker threads at peak, back down to {end} after the lull"
    );
    assert!(peak > 1, "overload must have triggered scale-out");
    assert!(end < peak, "the lull must have scaled back in");
}
