//! Real Job 1: GeoHash + windowed TopK over a simulated Wikipedia edit
//! stream, running on the threaded runtime with MILP rebalancing between
//! statistics periods.
//!
//! ```sh
//! cargo run --release --example wiki_topk
//! ```

use albic::job::{Job, JobError, Policy};
use albic::milp::MigrationBudget;
use albic::workloads::jobs::job1_topology;
use albic::workloads::wikipedia::WikipediaEditStream;

fn main() -> Result<(), JobError> {
    // The prebuilt Real Job 1 topology (source → geohash → topk → global)
    // on 4 live workers, rebalanced under the paper's 13-groups-per-period
    // budget — the same policy stack the simulator experiments use.
    let (topology, ops) = job1_topology(16);
    let global_op = ops[3];
    let mut job = Job::builder()
        .topology(topology)
        .nodes(4)
        .policy(Policy::milp().with_budget(MigrationBudget::Count(13)))
        .build_threaded()?;

    let stream = WikipediaEditStream::new(3_000.0, 42);
    for period in 0..5u64 {
        let report = job.inject("wiki-src", stream.tuples(period)).step();
        println!(
            "period {period}: {} edits processed, load distance {:.2}%",
            stream.rate_at(period).round(),
            report.stats.load_distance(job.cluster()),
        );
        if !report.apply.migrations.is_empty() {
            println!(
                "  migrated {} key groups ({} bytes of window state)",
                report.apply.migrations.len(),
                report.apply.total_state_bytes(),
            );
        }
    }

    // Show the global TopK state (key group of the constant merge key).
    let rt = job.into_engine();
    let kg = rt
        .topology()
        .group_for_key(global_op, albic::engine::tuple::hash_key(&"global-topk"));
    if let Some(bytes) = rt.probe_state(kg) {
        let m = albic::engine::codec::Reader::new(&bytes)
            .get_map_f64()
            .unwrap_or_default();
        let mut entries: Vec<(String, f64)> = m.into_iter().collect();
        entries.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("global top-5 most edited articles:");
        for (article, count) in entries.into_iter().take(5) {
            println!("  {article}: {count:.0} edits");
        }
    }
    rt.shutdown();
    Ok(())
}
