//! Real Job 1: GeoHash + windowed TopK over a simulated Wikipedia edit
//! stream, running on the threaded runtime with MILP rebalancing between
//! statistics periods.
//!
//! ```sh
//! cargo run --release --example wiki_topk
//! ```

use albic::core::{AdaptationFramework, Controller, MilpBalancer};
use albic::engine::{Cluster, CostModel, RoutingTable};
use albic::milp::MigrationBudget;
use albic::types::NodeId;
use albic::workloads::jobs::job1_topology;
use albic::workloads::wikipedia::WikipediaEditStream;

fn main() {
    let (topology, ops) = job1_topology(16);
    let src = ops[0];

    let cluster = Cluster::homogeneous(4);
    let ids: Vec<NodeId> = cluster.nodes().iter().map(|n| n.id).collect();
    let routing = RoutingTable::round_robin(topology.num_key_groups(), &ids);
    let rt =
        albic::engine::runtime::Runtime::start(topology, cluster, routing, CostModel::default());

    let stream = WikipediaEditStream::new(3_000.0, 42);
    // Rebalance under the paper's 13-groups-per-period budget — the same
    // Controller + policy stack the simulator experiments use, here driving
    // real worker threads through the ReconfigEngine trait.
    let mut policy =
        AdaptationFramework::balancing_only(MilpBalancer::new(MigrationBudget::Count(13)));
    let mut ctl = Controller::new(rt);

    for period in 0..5u64 {
        ctl.engine_mut().inject(src, stream.tuples(period));
        ctl.engine_mut().quiesce(8);
        let report = ctl.step(&mut policy);
        println!(
            "period {period}: {} edits processed, load distance {:.2}%",
            stream.rate_at(period).round(),
            report.stats.load_distance(ctl.engine().cluster()),
        );
        if !report.apply.migrations.is_empty() {
            println!(
                "  migrated {} key groups ({} bytes of window state)",
                report.apply.migrations.len(),
                report.apply.total_state_bytes(),
            );
        }
    }
    let rt = ctl.into_engine();

    // Show the global TopK state (key group of the constant merge key).
    let global_op = ops[3];
    let kg = rt
        .topology()
        .group_for_key(global_op, albic::engine::tuple::hash_key(&"global-topk"));
    if let Some(bytes) = rt.probe_state(kg) {
        let m = albic::engine::codec::Reader::new(&bytes)
            .get_map_f64()
            .unwrap_or_default();
        let mut entries: Vec<(String, f64)> = m.into_iter().collect();
        entries.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("global top-5 most edited articles:");
        for (article, count) in entries.into_iter().take(5) {
            println!("  {article}: {count:.0} edits");
        }
    }
    rt.shutdown();
}
