//! Real Job 1: GeoHash + windowed TopK over a simulated Wikipedia edit
//! stream, running on the threaded runtime with MILP rebalancing between
//! statistics periods.
//!
//! ```sh
//! cargo run --release --example wiki_topk
//! ```

use albic::core::allocator::{KeyGroupAllocator, NodeSet};
use albic::core::MilpBalancer;
use albic::engine::{Cluster, CostModel, RoutingTable};
use albic::milp::MigrationBudget;
use albic::types::NodeId;
use albic::workloads::jobs::job1_topology;
use albic::workloads::wikipedia::WikipediaEditStream;

fn main() {
    let (topology, ops) = job1_topology(16);
    let src = ops[0];

    let cluster = Cluster::homogeneous(4);
    let ids: Vec<NodeId> = cluster.nodes().iter().map(|n| n.id).collect();
    let routing = RoutingTable::round_robin(topology.num_key_groups(), &ids);
    let mut rt =
        albic::engine::runtime::Runtime::start(topology, cluster, routing, CostModel::default());

    let stream = WikipediaEditStream::new(3_000.0, 42);
    let mut balancer = MilpBalancer::new(MigrationBudget::Count(13));

    for period in 0..5u64 {
        rt.inject(src, stream.tuples(period));
        rt.quiesce(8);
        let stats = rt.end_period();
        let dist = stats.load_distance(rt.cluster());
        println!(
            "period {period}: {} edits processed, load distance {:.2}%",
            stream.rate_at(period).round(),
            dist,
        );

        // Rebalance under the paper's 13-groups-per-period budget.
        let ns = NodeSet::from_cluster(rt.cluster());
        let out = balancer.allocate(&stats, &ns, &CostModel::default());
        if !out.migrations.is_empty() {
            let reports = rt.migrate(&out.migrations);
            println!(
                "  migrated {} key groups ({} bytes of window state)",
                reports.len(),
                reports.iter().map(|r| r.state_bytes).sum::<usize>(),
            );
        }
    }

    // Show the global TopK state (key group of the constant merge key).
    let global_op = ops[3];
    let kg = rt
        .topology()
        .group_for_key(global_op, albic::engine::tuple::hash_key(&"global-topk"));
    if let Some(bytes) = rt.probe_state(kg) {
        let m = albic::engine::codec::Reader::new(&bytes)
            .get_map_f64()
            .unwrap_or_default();
        let mut entries: Vec<(String, f64)> = m.into_iter().collect();
        entries.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("global top-5 most edited articles:");
        for (article, count) in entries.into_iter().take(5) {
            println!("  {article}: {count:.0} edits");
        }
    }
    rt.shutdown();
}
