//! Quickstart: run a small job on the *threaded* runtime, watch the
//! statistics the engine collects, then let the Algorithm-1 controller and
//! the MILP balancer fix a skewed allocation with a real state migration.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use albic::core::{AdaptationFramework, Controller, MilpBalancer};
use albic::engine::operator::{Counting, Identity};
use albic::engine::topology::TopologyBuilder;
use albic::engine::tuple::{Tuple, Value};
use albic::engine::{Cluster, CostModel, RoutingTable};
use albic::milp::MigrationBudget;
use albic::types::NodeId;

fn main() {
    // A two-operator job: a pass-through source feeding a stateful
    // per-key counter, each hashed into 8 key groups.
    let mut b = TopologyBuilder::new();
    let src = b.source("events", 8, Arc::new(Identity));
    let count = b.operator("count", 8, Arc::new(Counting));
    b.edge(src, count);
    let topology = b.build().expect("valid DAG");

    // Two worker nodes; deliberately put *everything* on node 0.
    let cluster = Cluster::homogeneous(2);
    let routing = RoutingTable::all_on(topology.num_key_groups(), NodeId::new(0));
    let rt =
        albic::engine::runtime::Runtime::start(topology, cluster, routing, CostModel::default());

    // The paper's adaptation loop: the Controller owns housekeeping →
    // statistics → policy → plan application; the policy here is the MILP
    // balancer without scaling. The threaded runtime and the simulator
    // both implement ReconfigEngine, so this is exactly the stack the
    // figure experiments run — on real threads.
    let mut policy =
        AdaptationFramework::balancing_only(MilpBalancer::new(MigrationBudget::Unlimited));
    let mut ctl = Controller::new(rt);

    // Stream 20k keyed events through it, then run one adaptation round.
    ctl.engine_mut().inject(
        src,
        (0..20_000).map(|i| Tuple::keyed(&(i % 50), Value::Int(i), i as u64)),
    );
    ctl.engine_mut().quiesce(4);
    let report = ctl.step(&mut policy);
    println!("period 0: processed {} tuples", report.stats.total_tuples);
    println!(
        "  node loads: n0={:.1}% n1={:.1}%  (load distance {:.1})",
        report.stats.load_of(NodeId::new(0)),
        report.stats.load_of(NodeId::new(1)),
        report.stats.load_distance(ctl.engine().cluster()),
    );
    println!(
        "MILP planned {} migrations; executed with the direct state \
         migration protocol (redirect → buffer → ship → replay), moving \
         {} bytes of state",
        report.plan.migrations.len(),
        report.apply.total_state_bytes(),
    );

    // Keep streaming; the load is now split across both workers.
    ctl.engine_mut().inject(
        src,
        (0..20_000).map(|i| Tuple::keyed(&(i % 50), Value::Int(i), i as u64)),
    );
    ctl.engine_mut().quiesce(4);
    let mut rt = ctl.into_engine();
    let stats = rt.end_period();
    println!(
        "period 1: node loads n0={:.1}% n1={:.1}%  (load distance {:.1})",
        stats.load_of(NodeId::new(0)),
        stats.load_of(NodeId::new(1)),
        stats.load_distance(rt.cluster()),
    );
    rt.shutdown();
}
