//! Quickstart: run a small job on the *threaded* runtime, watch the
//! statistics the engine collects, then let the MILP balancer fix a skewed
//! allocation with a real state migration.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use albic::core::allocator::{KeyGroupAllocator, NodeSet};
use albic::core::MilpBalancer;
use albic::engine::operator::{Counting, Identity};
use albic::engine::topology::TopologyBuilder;
use albic::engine::tuple::{Tuple, Value};
use albic::engine::{Cluster, CostModel, RoutingTable};
use albic::milp::MigrationBudget;
use albic::types::NodeId;

fn main() {
    // A two-operator job: a pass-through source feeding a stateful
    // per-key counter, each hashed into 8 key groups.
    let mut b = TopologyBuilder::new();
    let src = b.source("events", 8, Arc::new(Identity));
    let count = b.operator("count", 8, Arc::new(Counting));
    b.edge(src, count);
    let topology = b.build().expect("valid DAG");

    // Two worker nodes; deliberately put *everything* on node 0.
    let cluster = Cluster::homogeneous(2);
    let routing = RoutingTable::all_on(topology.num_key_groups(), NodeId::new(0));
    let mut rt =
        albic::engine::runtime::Runtime::start(topology, cluster, routing, CostModel::default());

    // Stream 20k keyed events through it.
    rt.inject(
        src,
        (0..20_000).map(|i| Tuple::keyed(&(i % 50), Value::Int(i), i as u64)),
    );
    rt.quiesce(4);
    let stats = rt.end_period();
    println!("period 0: processed {} tuples", stats.total_tuples);
    println!(
        "  node loads: n0={:.1}% n1={:.1}%  (load distance {:.1})",
        stats.load_of(NodeId::new(0)),
        stats.load_of(NodeId::new(1)),
        stats.load_distance(rt.cluster()),
    );

    // Ask the paper's MILP for a better allocation and apply it with the
    // direct state migration protocol (redirect → buffer → ship → replay).
    let ns = NodeSet::from_cluster(rt.cluster());
    let mut balancer = MilpBalancer::new(MigrationBudget::Unlimited);
    let plan = balancer.allocate(&stats, &ns, &CostModel::default());
    println!(
        "MILP plans {} migrations (projected distance {:.2}, lower bound {:.2})",
        plan.migrations.len(),
        plan.projected_distance,
        plan.lower_bound,
    );
    let reports = rt.migrate(&plan.migrations);
    let moved_bytes: usize = reports.iter().map(|r| r.state_bytes).sum();
    println!(
        "migrated {} key groups, {} bytes of state",
        reports.len(),
        moved_bytes
    );

    // Keep streaming; the load is now split across both workers.
    rt.inject(
        src,
        (0..20_000).map(|i| Tuple::keyed(&(i % 50), Value::Int(i), i as u64)),
    );
    rt.quiesce(4);
    let stats = rt.end_period();
    println!(
        "period 1: node loads n0={:.1}% n1={:.1}%  (load distance {:.1})",
        stats.load_of(NodeId::new(0)),
        stats.load_of(NodeId::new(1)),
        stats.load_distance(rt.cluster()),
    );
    rt.shutdown();
}
