//! Quickstart: the MILP balancer fixes a deliberately skewed allocation
//! with a real state migration on live worker threads.

use albic::engine::operator::{Counting, Identity};
use albic::engine::tuple::{Tuple, Value};
use albic::job::{Job, JobError, Policy};
use albic::types::NodeId;

fn loads(s: &albic::engine::PeriodStats, c: &albic::engine::Cluster) -> String {
    format!(
        "node loads n0={:.1}% n1={:.1}%  (load distance {:.1})",
        s.load_of(NodeId::new(0)),
        s.load_of(NodeId::new(1)),
        s.load_distance(c)
    )
}

fn main() -> Result<(), JobError> {
    let mut job = Job::builder()
        .source("events", 8, Identity)
        .operator("count", 8, Counting)
        .edge("events", "count")
        .nodes(2)
        .routing_all_on_first()
        .policy(Policy::milp())
        .build_threaded()?;
    let events = |p: u64| (0..20_000).map(move |i| Tuple::keyed(&(i % 50), Value::Int(i), p));
    let report = job.inject("events", events(0)).step();
    println!("period 0: processed {} tuples", report.stats.total_tuples);
    println!("  {}", loads(&report.stats, job.cluster()));
    println!(
        "MILP planned {} migrations; executed them, moving {} bytes of state",
        report.plan.migrations.len(),
        report.apply.total_state_bytes(),
    );
    let stats = job.inject("events", events(1)).measure();
    println!("period 1: {}", loads(&stats, job.cluster()));
    job.shutdown();
    Ok(())
}
