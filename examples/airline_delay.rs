//! Real Job 2 at paper scale on the simulator: ALBIC gradually collocates
//! the airplane-keyed pipeline, cutting cross-node traffic and the system
//! load index, while COLA gets there instantly at massive migration cost.
//!
//! ```sh
//! cargo run --release --example airline_delay
//! ```

use albic::core::metrics;
use albic::engine::PeriodRecord;
use albic::job::{Job, JobError, Policy};
use albic::milp::MigrationBudget;
use albic::workloads::airline::AirlineJobWorkload;

fn run(use_albic: bool) -> Result<Vec<PeriodRecord>, JobError> {
    let groups_per_op = 50u32;
    let workers = 10usize;
    let workload = AirlineJobWorkload::job2(35_000.0, groups_per_op, 7);
    let policy = if use_albic {
        Policy::albic()
            .with_budget(MigrationBudget::Count(10))
            .with_downstream(workload.downstream_groups())
    } else {
        Policy::cola()
    };

    // Worst-case initial allocation: no communicating pair collocated.
    let assignment: Vec<u32> = (0..groups_per_op * 2)
        .map(|g| {
            let op = g / groups_per_op;
            ((g % groups_per_op) + op) % workers as u32
        })
        .collect();

    let mut job = Job::builder()
        .nodes(workers)
        .routing_assignment(assignment)
        .policy(policy)
        .build_simulated(workload)?;
    Ok(job.run(60).to_vec())
}

fn main() -> Result<(), JobError> {
    println!("Real Job 2: sum flight delays per airplane (perfectly collocatable)\n");
    let albic_hist = run(true)?;
    let cola_hist = run(false)?;
    let albic_index = metrics::load_index_series(&albic_hist, 2);
    let cola_index = metrics::load_index_series(&cola_hist, 2);

    println!("period | ALBIC: colloc%  loadidx  #migr | COLA: colloc%  loadidx  #migr");
    for p in (0..albic_hist.len()).step_by(10) {
        println!(
            "{:>6} |        {:>6.1}  {:>7.1}  {:>5} |       {:>6.1}  {:>7.1}  {:>5}",
            p,
            albic_hist[p].collocation_factor,
            albic_index[p],
            albic_hist[p].migrations,
            cola_hist[p].collocation_factor,
            cola_index[p],
            cola_hist[p].migrations,
        );
    }
    let last = albic_hist.len() - 1;
    println!(
        "\nALBIC reached {:.0}% collocation and cut the load index to {:.0}% \
         while migrating ~{} groups/period; COLA was instant but moved {} \
         groups in its first period.",
        albic_hist[last].collocation_factor,
        albic_index[last],
        albic_hist[last].migrations,
        cola_hist[0].migrations,
    );
    Ok(())
}
