//! Real Job 2 at paper scale on the simulator: ALBIC gradually collocates
//! the airplane-keyed pipeline, cutting cross-node traffic and the system
//! load index, while COLA gets there instantly at massive migration cost.
//!
//! ```sh
//! cargo run --release --example airline_delay
//! ```

use albic::core::albic::{Albic, AlbicConfig};
use albic::core::baselines::Cola;
use albic::core::framework::AdaptationFramework;
use albic::core::{metrics, Controller};
use albic::engine::reconfig::ReconfigPolicy;
use albic::engine::{Cluster, CostModel, RoutingTable, SimEngine};
use albic::milp::MigrationBudget;
use albic::workloads::airline::AirlineJobWorkload;

fn run(use_albic: bool) -> Vec<albic::engine::sim::PeriodRecord> {
    let groups_per_op = 50u32;
    let workers = 10usize;
    let workload = AirlineJobWorkload::job2(35_000.0, groups_per_op, 7);
    let downstream = workload.downstream_groups();

    // Worst-case initial allocation: no communicating pair collocated.
    let cluster = Cluster::homogeneous(workers);
    let ids: Vec<_> = cluster.nodes().iter().map(|n| n.id).collect();
    let total = groups_per_op * 2;
    let routing = RoutingTable::from_assignment(
        (0..total)
            .map(|g| {
                let op = g / groups_per_op;
                ids[((g % groups_per_op) + op) as usize % workers]
            })
            .collect(),
    );
    let mut engine = SimEngine::new(workload, cluster, routing, CostModel::default());

    let mut albic_policy;
    let mut cola_policy;
    let policy: &mut dyn ReconfigPolicy = if use_albic {
        albic_policy = AdaptationFramework::balancing_only(Albic::new(
            AlbicConfig {
                budget: MigrationBudget::Count(10),
                ..Default::default()
            },
            downstream,
        ));
        &mut albic_policy
    } else {
        cola_policy = AdaptationFramework::balancing_only(Cola::default());
        &mut cola_policy
    };

    // The Algorithm-1 controller owns the adaptation loop.
    Controller::new(&mut engine).run(policy, 60)
}

fn main() {
    println!("Real Job 2: sum flight delays per airplane (perfectly collocatable)\n");
    let albic_hist = run(true);
    let cola_hist = run(false);
    let albic_index = metrics::load_index_series(&albic_hist, 2);
    let cola_index = metrics::load_index_series(&cola_hist, 2);

    println!("period | ALBIC: colloc%  loadidx  #migr | COLA: colloc%  loadidx  #migr");
    for p in (0..albic_hist.len()).step_by(10) {
        println!(
            "{:>6} |        {:>6.1}  {:>7.1}  {:>5} |       {:>6.1}  {:>7.1}  {:>5}",
            p,
            albic_hist[p].collocation_factor,
            albic_index[p],
            albic_hist[p].migrations,
            cola_hist[p].collocation_factor,
            cola_index[p],
            cola_hist[p].migrations,
        );
    }
    let last = albic_hist.len() - 1;
    println!(
        "\nALBIC reached {:.0}% collocation and cut the load index to {:.0}% \
         while migrating ~{} groups/period; COLA was instant but moved {} \
         groups in its first period.",
        albic_hist[last].collocation_factor,
        albic_index[last],
        albic_hist[last].migrations,
        cola_hist[0].migrations,
    );
}
